"""The asyncio gateway: many concurrent clients over the shard fleet.

One :class:`GatewayServer` multiplexes any number of concurrent JSONL
clients — AF_UNIX (:meth:`GatewayServer.start_unix`) and TCP
(:meth:`GatewayServer.start_tcp`) speak the exact wire protocol of the
sequential server; :mod:`repro.service.gateway.http` adds an HTTP/JSON
facade on the same path — over a :class:`ShardFleet` of kernel worker
processes sharded by schema fingerprint.

Request path for a ``decide`` line::

    read line → typed model validation → admission (quota / queue /
    in-flight gates) → per-shard fair queue → DRR dispatcher →
    shard worker (ContainmentServer) → response written back

Differences from the sequential server, by design:

* ``decide`` responses stream back *as they complete* — there is no
  batch-flush buffering, so concurrent clients are never serialized
  behind each other.  Clients match responses by ``id``.  Verdict
  *payloads* are still bit-identical to the sequential server (same
  scheduler/kernel stack in each shard), which E23 asserts.
* ``flush`` waits for the connection's outstanding decisions (whose
  verdicts have then already been written) and answers an ``ack``.
* ``shutdown`` ends *that connection* (drain + ``bye``), not the whole
  gateway — one tenant must not be able to stop the service for the
  rest.  Stopping the gateway is the owner's call (:meth:`stop`, CLI
  signal).
* rejected requests answer a structured ``overloaded`` error immediately
  and never occupy a shard slot.

Framing robustness: lines arrive in arbitrary TCP segmentation; a
connection that dies mid-line, overruns the line limit, or resets is
counted under ``connections_dropped`` and never takes down the accept
loop (the PR 5 fuzz contract, extended to the async path).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.resilience import faults
from repro.resilience.health import QUARANTINED, HealthPolicy, ShardHealth
from repro.service.gateway.admission import AdmissionController, FairQueue, TenantQuota
from repro.service.gateway.models import (
    DecideModel,
    ModelValidationError,
    SchemaModel,
)
from repro.service.gateway.shards import ShardFleet, ShardUnavailable
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    draining_response,
    encode_response,
    error_response,
    overloaded_response,
)

OUTCOME_ADMITTED = "admitted"
OUTCOME_REJECTED = "rejected"
OUTCOME_INVALID = "invalid"


@dataclass
class GatewayConfig:
    """Tunables for one gateway instance (all bounded by default)."""

    shards: int = 2
    processes: bool = True
    """Process workers (the real deployment shape) or in-process threads
    (single-CPU test mode; same code path minus fork)."""
    max_inflight: int = 2048
    max_queue: int = 1024
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: dict[str, TenantQuota] = field(default_factory=dict)
    shard_pipeline: int = 4
    """Envelopes kept in flight per shard socket: enough to hide the
    round-trip, small enough that fairness is decided in the DRR queue,
    not in the worker's FIFO."""
    cache_dir: Union[None, str, Path] = None
    use_cache: bool = False
    workers: Union[int, str, None] = None
    default_timeout_ms: Optional[int] = None
    backend: Optional[str] = None
    semantic_cache: bool = True
    """Enable the per-session semantic lattices on every shard worker
    (:mod:`repro.cache.semantic`); requests can still opt out per-decision
    via ``options.semantic_cache``."""
    max_line_bytes: int = 1 << 20
    max_respawns: int = 5
    audit: bool = True
    """Run the verdict integrity auditor inside every shard worker (the
    serve-time countermodel check + sampled A/B backend oracle)."""
    health: bool = True
    """Drive the per-shard health ladder (``healthy → degraded →
    quarantined`` with half-open recovery probes)."""
    health_policy: Optional[HealthPolicy] = None
    """Ladder/breaker tunables; ``None`` uses :class:`HealthPolicy`
    defaults."""
    health_interval_s: float = 0.05
    """Cadence of the probe loop that re-admits quarantined shards."""


class _Connection:
    """Per-client state: write lock, outstanding decide tasks, stream."""

    _ids = 0

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        _Connection._ids += 1
        self.id = _Connection._ids
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()
        self.alive = True
        self.dropped = False
        self.seq = 0
        """Per-connection request counter (stable default ids, like the
        sequential server's per-stream :class:`StreamState`)."""


class GatewayServer:
    """The concurrent multi-tenant front-end over a shard fleet."""

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.admission = AdmissionController(
            default_quota=self.config.default_quota,
            tenant_quotas=self.config.tenant_quotas,
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            metrics=self.metrics,
        )
        self.fleet = ShardFleet(
            self.config.shards,
            processes=self.config.processes,
            cache_dir=self.config.cache_dir,
            use_cache=self.config.use_cache,
            workers=self.config.workers,
            default_timeout_ms=self.config.default_timeout_ms,
            backend=self.config.backend,
            semantic_cache=self.config.semantic_cache,
            audit=self.config.audit,
            metrics=self.metrics,
            max_respawns=self.config.max_respawns,
            on_worker_loss=self._on_worker_loss if self.config.health else None,
        )
        self.health: list[ShardHealth] = (
            [
                ShardHealth(i, policy=self.config.health_policy)
                for i in range(self.config.shards)
            ]
            if self.config.health
            else []
        )
        self._queues = [
            FairQueue(self.admission.weight_of) for _ in range(self.config.shards)
        ]
        self._queue_events = [asyncio.Event() for _ in range(self.config.shards)]
        self._dispatchers: list[asyncio.Task] = []
        self._servers: list[asyncio.base_events.Server] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._ref_keys: dict[str, str] = {}
        self._started = False
        self._draining = False
        self._health_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------- #
    # lifecycle

    async def start(self) -> None:
        """Start the fleet and the per-shard dispatchers (no listeners yet
        — add them with :meth:`start_unix` / :meth:`start_tcp` /
        :meth:`start_http`)."""
        await self.fleet.start()
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop(i))
            for i in range(self.config.shards)
        ]
        if self.health:
            self._health_task = asyncio.ensure_future(self._health_loop())
        self._started = True

    async def stop(self) -> None:
        self._started = False
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except (asyncio.CancelledError, Exception):
                pass
            self._health_task = None
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._servers = []
        # connection handlers park on readline; cancel and await them so
        # nothing is destroyed while pending
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._dispatchers = []
        # queued-but-undispatched decisions must still resolve: their
        # awaiting tasks would otherwise never finish
        for queue in self._queues:
            while True:
                popped = queue.pop()
                if popped is None:
                    break
                _tenant, (_line, future) = popped
                if not future.done():
                    future.set_exception(ShardUnavailable("gateway stopping"))
        await self.fleet.stop()

    async def start_unix(self, path: Union[str, Path]) -> asyncio.base_events.Server:
        """Listen for JSONL clients on a local AF_UNIX socket."""
        socket_path = Path(path)
        if socket_path.exists():
            try:
                socket_path.unlink()
            except FileNotFoundError:
                pass
        server = await asyncio.start_unix_server(
            self._serve_jsonl, path=str(socket_path),
            limit=self.config.max_line_bytes,
        )
        self._servers.append(server)
        return server

    async def start_tcp(self, host: str, port: int) -> asyncio.base_events.Server:
        """Listen for JSONL clients on TCP ``host:port``."""
        server = await asyncio.start_server(
            self._serve_jsonl, host=host, port=port,
            limit=self.config.max_line_bytes,
        )
        self._servers.append(server)
        return server

    async def start_http(self, host: str, port: int) -> asyncio.base_events.Server:
        """Listen for HTTP/JSON clients on TCP ``host:port``."""
        from repro.service.gateway.http import serve_http_connection

        async def handler(reader, writer):
            await serve_http_connection(self, reader, writer)

        server = await asyncio.start_server(
            handler, host=host, port=port, limit=self.config.max_line_bytes,
        )
        self._servers.append(server)
        return server

    # ------------------------------------------------------------- #
    # JSONL transport

    async def _serve_jsonl(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection; never raises into the accept loop."""
        conn = _Connection(writer)
        self.metrics.count("connections")
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # line longer than the limit: hostile or broken framing
                    self.metrics.count("gateway_line_overflow")
                    conn.dropped = True
                    break
                except (ConnectionResetError, BrokenPipeError, OSError):
                    conn.dropped = True
                    break
                if not raw:
                    break
                if not raw.endswith(b"\n") and reader.at_eof():
                    # mid-request disconnect: a torn partial line
                    if raw.strip():
                        conn.dropped = True
                    break
                stop = await self._handle_wire_line(raw, conn)
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError, OSError):
            conn.dropped = True
        except asyncio.CancelledError:
            # gateway stop: close out quietly, not a client-caused drop
            conn.alive = False
        finally:
            await asyncio.shield(self._finish_connection(conn))

    async def _finish_connection(self, conn: _Connection) -> None:
        # outstanding decisions still complete (and release admission);
        # their writes fail silently once the client is gone
        if conn.tasks:
            await asyncio.gather(*conn.tasks, return_exceptions=True)
        if conn.dropped:
            self.metrics.count("connections_dropped")
        conn.alive = False
        try:
            conn.writer.close()
        except Exception:
            pass

    async def _handle_wire_line(self, raw: bytes, conn: _Connection) -> bool:
        """Process one framed line; returns True to close the connection."""
        try:
            line = raw.decode("utf-8").strip()
        except UnicodeDecodeError:
            self.metrics.count("errors")
            await self._write(conn, [error_response(None, "bad encoding: not UTF-8")])
            return False
        if not line:
            return False
        conn.seq += 1
        default_id = f"req-{conn.seq}"
        self.metrics.count("requests")
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            self.metrics.count("errors")
            await self._write(conn, [error_response(None, f"bad JSON: {exc}")])
            return False
        if not isinstance(data, dict):
            self.metrics.count("errors")
            await self._write(conn, [error_response(None, "request must be a JSON object")])
            return False
        rtype = data.get("type", "decide")
        self.metrics.count(f"requests_{rtype}")
        if rtype == "ping":
            await self._write(conn, [{"type": "pong", "id": str(data.get("id", "ping"))}])
            return False
        if rtype == "stats":
            await self._write(conn, [{
                "type": "stats", "id": str(data.get("id", "stats")),
                "stats": self.stats(),
            }])
            return False
        if rtype == "flush":
            await self._drain_connection(conn)
            await self._write(conn, [{"type": "ack", "id": str(data.get("id", "flush"))}])
            return False
        if rtype == "shutdown":
            await self._drain_connection(conn)
            await self._write(conn, [{"type": "bye", "id": str(data.get("id", "shutdown"))}])
            return True
        if rtype == "schema":
            try:
                model = SchemaModel.from_wire(data, default_id=default_id)
            except ModelValidationError as exc:
                self.metrics.count("errors")
                await self._write(conn, [error_response(data.get("id"), str(exc))])
                return False
            responses = await self.register_schema(model)
            await self._write(conn, responses)
            return False
        if rtype == "decide":
            try:
                model = DecideModel.from_wire(data, default_id=default_id)
            except ModelValidationError as exc:
                self.metrics.count("errors")
                self.metrics.count("gateway_invalid")
                await self._write(conn, [error_response(data.get("id"), str(exc))])
                return False
            task = asyncio.ensure_future(self._decide_and_write(conn, model))
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)
            return False
        self.metrics.count("errors")
        await self._write(conn, [error_response(data.get("id"), f"unknown request type {rtype!r}")])
        return False

    async def _drain_connection(self, conn: _Connection) -> None:
        while conn.tasks:
            tasks = list(conn.tasks)
            await asyncio.gather(*tasks, return_exceptions=True)
            for task in tasks:
                conn.tasks.discard(task)

    async def _write(self, conn: _Connection, responses: list[dict]) -> None:
        if not responses or not conn.alive:
            return
        payload = "".join(encode_response(r) + "\n" for r in responses).encode()
        async with conn.write_lock:
            if not conn.alive:
                return
            try:
                conn.writer.write(payload)
                await conn.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                conn.alive = False
                conn.dropped = True

    async def _decide_and_write(self, conn: _Connection, model: DecideModel) -> None:
        _outcome, responses = await self.decide(model)
        await self._write(conn, responses)

    # ------------------------------------------------------------- #
    # core request path (shared by JSONL and HTTP facades)

    async def register_schema(self, model: SchemaModel) -> list[dict]:
        """Broadcast a schema registration to every shard."""
        self._ref_keys[model.ref] = self._schema_key(model.tbox)
        try:
            return await self.fleet.broadcast_schema(model.wire_line())
        except ShardUnavailable as exc:
            self.metrics.count("errors")
            return [error_response(model.id, f"shard unavailable: {exc}")]

    async def decide(self, model: DecideModel) -> tuple[str, list[dict]]:
        """Admit, route, dispatch one decision; returns
        ``(admission outcome, responses)``."""
        start = time.perf_counter()
        tenant = model.tenant
        if self._draining:
            self.metrics.count("gateway_drain_rejected")
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.observe_latency_ms(elapsed_ms, outcome=OUTCOME_REJECTED)
            return OUTCOME_REJECTED, [draining_response(model.id)]
        reason = self.admission.admit(tenant)
        if reason is not None:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.observe_latency_ms(elapsed_ms, outcome=OUTCOME_REJECTED)
            return OUTCOME_REJECTED, [overloaded_response(
                model.id, reason, tenant=tenant,
                retry_after_ms=self.admission.retry_after_ms(tenant) or None,
            )]
        shard_id = self._route(model)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queues[shard_id].push(tenant, (model.wire_line(), future))
        self._queue_events[shard_id].set()
        try:
            responses = await future
        finally:
            self.admission.release(tenant)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.observe_latency_ms(elapsed_ms, outcome=OUTCOME_ADMITTED)
        return OUTCOME_ADMITTED, responses

    @staticmethod
    def _schema_key(tbox: dict) -> str:
        return hashlib.sha256(
            json.dumps(tbox, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()

    def _route(self, model: DecideModel) -> int:
        """Shard index for a decision: schema fingerprint when there is a
        schema (cache locality), query text otherwise (load spreading)."""
        if model.schema_ref is not None:
            key = self._ref_keys.get(model.schema_ref)
            if key is None:
                # unknown ref: still deterministic — the shard will answer
                # the structured "unknown schema_ref" error
                key = f"ref:{model.schema_ref}"
        elif model.schema is not None:
            key = self._schema_key(model.schema)
        else:
            key = f"queries:{model.lhs}\x00{model.rhs}"
        base = self.fleet.shard_id_for(key)
        return self._route_healthy(base)

    def _route_healthy(self, base: int) -> int:
        """Steer around quarantined/dead shards: scan forward from the
        fingerprint's home shard to the first one taking traffic (schemas
        are broadcast to every shard, so any shard can serve any decision
        — the reroute costs cache locality, not correctness).  When no
        shard accepts, keep the home shard: it answers the structured
        ``shard unavailable`` error."""
        if not self.health:
            return base
        for offset in range(self.config.shards):
            candidate = (base + offset) % self.config.shards
            if (
                self.health[candidate].accepts_traffic()
                and not self.fleet.shards[candidate].dead
            ):
                if candidate != base:
                    self.metrics.count("gateway_rerouted")
                    self.metrics.shard_count(base, "rerouted_away")
                return candidate
        return base

    # ------------------------------------------------------------- #
    # dispatch

    async def _dispatch_loop(self, shard_id: int) -> None:
        """Drain shard ``shard_id``'s fair queue into its worker, keeping
        at most ``shard_pipeline`` envelopes in flight."""
        queue = self._queues[shard_id]
        event = self._queue_events[shard_id]
        semaphore = asyncio.Semaphore(self.config.shard_pipeline)
        while True:
            await event.wait()
            # clear *before* draining: a push that lands mid-drain re-sets
            # the event, so no item can be stranded behind a lost wakeup
            event.clear()
            while True:
                popped = queue.pop()
                if popped is None:
                    break
                tenant, (line, future) = popped
                self.admission.dequeued(tenant)
                self.metrics.gauge_set(
                    f"gateway.fair_queue.{shard_id}", len(queue)
                )
                await semaphore.acquire()
                task = asyncio.ensure_future(
                    self._run_on_shard(shard_id, tenant, line, future)
                )
                task.add_done_callback(lambda _t: semaphore.release())

    async def _run_on_shard(
        self,
        shard_id: int,
        tenant: str,
        line: str,
        future: asyncio.Future,
    ) -> None:
        health = self.health[shard_id] if self.health else None
        if health is not None:
            overrides = health.overrides()
            if overrides:
                line = self._apply_overrides(line, overrides)
                self.metrics.shard_count(shard_id, "degraded_dispatch")
        try:
            faults.maybe_fault("gateway.dispatch")
            responses = await self.fleet.submit(shard_id, line)
        except faults.FaultInjected as exc:
            self.metrics.count("errors")
            responses = [error_response(None, f"gateway fault: {exc}")]
            if health is not None:
                health.record_failure("fault", str(exc))
        except ShardUnavailable as exc:
            self.metrics.count("errors")
            self.metrics.count("gateway_shard_unavailable")
            responses = [error_response(None, f"shard unavailable: {exc}")]
        except Exception as exc:  # the dispatch loop must never die
            self.metrics.count("errors")
            responses = [error_response(None, f"internal gateway error: {exc}")]
            if health is not None:
                health.record_failure("fault", str(exc))
        else:
            if health is not None:
                self._observe_shard_responses(health, responses)
        self.metrics.tenant_count(tenant, "responses")
        for response in responses:
            # per-tenant verdict provenance: which cache layer answered
            # (dedup / cache / semantic / computed) — the gateway-level
            # visibility the semantic cache's warm-shard win shows up in
            source = response.get("source")
            if response.get("type") == "verdict" and isinstance(source, str):
                self.metrics.tenant_count(tenant, f"verdicts_{source}")
                if source == "semantic":
                    self.metrics.tenant_count(tenant, "semcache_hits")
        if not future.done():
            future.set_result(responses)

    # ------------------------------------------------------------- #
    # health ladder

    @staticmethod
    def _apply_overrides(line: str, overrides: dict) -> str:
        """Merge degradation-ladder overrides into a decide wire line.

        Every ladder key (``semantic_cache`` / ``backend`` / ``workers``)
        is excluded from decision identity, so the rewritten request gets
        the same verdict — computed with less machinery."""
        try:
            data = json.loads(line)
        except ValueError:
            return line
        if not isinstance(data, dict) or data.get("type", "decide") != "decide":
            return line
        options = data.get("options")
        options = dict(options) if isinstance(options, dict) else {}
        options.update(overrides)
        data["options"] = options
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def _observe_shard_responses(
        self, health: ShardHealth, responses: list[dict]
    ) -> None:
        """Fold one dispatch's outcome into the shard's health machine.

        Only *shard-side* failures count against health: injected shard
        faults and audit failures (the scheduler's ``decision failed:
        audit failed`` error).  Client mistakes — unparseable queries,
        unknown ``schema_ref`` — are normal service and must not climb
        the ladder."""
        failed = False
        for response in responses:
            if response.get("type") != "error":
                continue
            message = response.get("error", "")
            if "audit failed" in message:
                health.record_failure("audit_failure", message)
                self.metrics.count("gateway_audit_failures")
                failed = True
            elif "shard fault" in message:
                health.record_failure("fault", message)
                failed = True
        if not failed:
            health.record_success()

    def _on_worker_loss(self, shard_id: int, dead: bool) -> None:
        """Fleet callback: a worker died (``dead`` once the respawn budget
        is exhausted — straight to quarantine, probes take it from there)."""
        if not self.health:
            return
        health = self.health[shard_id]
        if dead:
            health.quarantine("respawn budget exhausted")
        else:
            health.record_failure("worker_loss")

    async def _health_loop(self) -> None:
        """Half-open recovery driver: each tick, any quarantined shard past
        its cooloff gets one probe — a cold worker respawn followed by a
        self-test pair of decisions with known answers."""
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for health in self.health:
                if health.state == QUARANTINED and health.allow_probe():
                    try:
                        ok = await self._probe_shard(health.shard_id)
                    except Exception:
                        ok = False
                    health.on_probe_result(ok)
                    self.metrics.shard_count(health.shard_id, "probes")
                    if ok:
                        self.metrics.shard_count(health.shard_id, "readmitted")
                        self.metrics.count("gateway_shard_readmissions")

    async def _probe_shard(self, shard_id: int) -> bool:
        """Cold-respawn a quarantined shard and self-test it: one known
        containment and one known non-containment must both come back
        complete and correct before the shard takes tenant traffic again."""
        try:
            await self.fleet.restart_shard(shard_id)
        except Exception:
            return False
        probes = (
            ({"type": "decide", "id": "probe-pos", "lhs": "A(x)", "rhs": "A(x)"}, True),
            ({"type": "decide", "id": "probe-neg", "lhs": "A(x)", "rhs": "B(x)"}, False),
        )
        for request, expected in probes:
            try:
                responses = await self.fleet.submit(
                    shard_id, json.dumps(request, sort_keys=True, separators=(",", ":"))
                )
            except Exception:
                return False
            if not self._probe_ok(responses, expected):
                return False
        return True

    @staticmethod
    def _probe_ok(responses: list[dict], expected: bool) -> bool:
        for response in responses:
            if response.get("type") == "verdict":
                verdict = response.get("verdict") or {}
                return (
                    verdict.get("contained") is expected
                    and verdict.get("complete") is True
                )
        return False

    # ------------------------------------------------------------- #
    # drain

    def begin_drain(self) -> None:
        """Stop admitting decide requests; in-flight work keeps running."""
        if not self._draining:
            self._draining = True
            self.metrics.count("gateway_drains")

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: reject new decisions, wait for in-flight ones
        to complete (and journal), then stop the gateway.  Returns True
        when everything in flight finished inside the timeout."""
        self.begin_drain()
        deadline = time.monotonic() + timeout_s
        while self.admission.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        drained = self.admission.inflight == 0
        await self.stop()
        return drained

    def readiness(self) -> tuple[bool, dict]:
        """The ``/v1/readyz`` payload: ready iff started, not draining, and
        at least one shard accepts traffic (liveness — ``/v1/healthz`` —
        stays true through a drain; readiness is what load balancers gate
        new traffic on)."""
        if self.health:
            accepting = sum(
                1
                for i, health in enumerate(self.health)
                if health.accepts_traffic() and not self.fleet.shards[i].dead
            )
        else:
            accepting = sum(1 for shard in self.fleet.shards if not shard.dead)
        ready = self._started and not self._draining and accepting > 0
        return ready, {
            "ready": ready,
            "started": self._started,
            "draining": self._draining,
            "shards_accepting": accepting,
            "shards": self.config.shards,
        }

    # ------------------------------------------------------------- #
    # stats

    def fair_dequeue_stats(self) -> dict:
        """Per-shard DRR queue statistics (the E23 fairness evidence)."""
        return {
            str(shard_id): queue.stats()
            for shard_id, queue in enumerate(self._queues)
        }

    def stats(self) -> dict:
        payload = self.metrics.snapshot()
        payload["gateway"] = {
            "shards": self.config.shards,
            "processes": self.config.processes,
            "inflight": self.admission.inflight,
            "fair_queues": self.fair_dequeue_stats(),
            "schema_refs": len(self._ref_keys),
            "draining": self._draining,
            "audit": self.config.audit,
        }
        if self.health:
            payload["gateway"]["health"] = [h.snapshot() for h in self.health]
        return payload

    async def shard_stats(self) -> list[dict]:
        """Deep per-shard snapshots (one stats envelope per worker)."""
        return await self.fleet.stats()
