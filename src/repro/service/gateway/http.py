"""A minimal HTTP/1.1 JSON facade over the gateway.

No web framework — the container ships none we may add — so this module
implements just enough HTTP/1.1 on asyncio streams for curl-able,
keep-alive JSON endpoints, all funnelling into the same typed models +
admission + shard dispatch path as the JSONL transport:

=======  =====================  ===========================================
method   path                   action
=======  =====================  ===========================================
POST     ``/v1/decide``         one containment decision (body =
                                :class:`DecideModel` fields; tenant also
                                accepted via ``X-Repro-Tenant``)
POST     ``/v1/schemas``        register a schema for ``schema_ref`` reuse
GET      ``/v1/stats``          gateway metrics snapshot
                                (``?deep=1`` adds per-shard snapshots)
GET      ``/v1/healthz``        liveness probe (true while the process runs,
                                even mid-drain)
GET      ``/v1/readyz``         readiness probe — 200 only when started,
                                not draining, and ≥1 shard accepts traffic;
                                503 otherwise (what load balancers gate on)
=======  =====================  ===========================================

Status mapping: validation failures → 400, admission rejections → 429
with a ``Retry-After`` header (seconds, rounded up), shard loss → 503,
unknown paths → 404.  Responses are ``application/json`` with explicit
``Content-Length``; ``Connection: close`` (or HTTP/1.0) ends the
keep-alive loop.

Body size is capped (16 MB) and header count bounded — a hostile client
disconnecting mid-body or overrunning limits is dropped and counted under
``connections_dropped``, identical to the JSONL framing contract.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import TYPE_CHECKING, Optional

from repro.service.gateway.models import (
    DecideModel,
    ModelValidationError,
    SchemaModel,
)
from repro.service.gateway.shards import ShardUnavailable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.gateway.gateway import GatewayServer

MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_HEADERS = 100

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _encode(
    status: int,
    payload: dict,
    *,
    keep_alive: bool,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[tuple[str, str, str, dict[str, str], bytes]]:
    """Parse one request; ``None`` on clean EOF before a request line.

    Returns ``(method, path, version, headers, body)``; raises
    :class:`_HttpError` on malformed input and ``ConnectionError`` on a
    mid-request disconnect."""
    request_line = await reader.readline()
    if not request_line:
        return None
    if not request_line.endswith(b"\n") and reader.at_eof():
        raise ConnectionResetError("mid-request disconnect")
    try:
        method, path, version = request_line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise _HttpError(400, "malformed request line")
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await reader.readline()
        if not line.endswith(b"\n") and reader.at_eof():
            raise ConnectionResetError("mid-headers disconnect")
        line = line.strip()
        if not line:
            break
        if len(headers) >= MAX_HEADERS:
            raise _HttpError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header {name[:40]!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HttpError(400, "unterminated headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "bad Content-Length")
        if length < 0:
            raise _HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    return method, path, version, headers, body


def _json_body(body: bytes) -> dict:
    if not body:
        raise _HttpError(400, "empty body (JSON object expected)")
    try:
        data = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise _HttpError(400, f"bad JSON body: {exc}")
    if not isinstance(data, dict):
        raise _HttpError(400, "body must be a JSON object")
    return data


async def serve_http_connection(
    gateway: "GatewayServer",
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One HTTP client: requests in a keep-alive loop, errors as JSON."""
    gateway.metrics.count("connections")
    gateway.metrics.count("http_connections")
    dropped = False
    task = asyncio.current_task()
    if task is not None:
        gateway._conn_tasks.add(task)
        task.add_done_callback(gateway._conn_tasks.discard)
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except _HttpError as exc:
                gateway.metrics.count("errors")
                writer.write(_encode(
                    exc.status, {"error": exc.message}, keep_alive=False
                ))
                await writer.drain()
                break
            except (ConnectionError, asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError, ValueError, OSError):
                dropped = True
                break
            if parsed is None:
                break
            method, path, version, headers, body = parsed
            keep_alive = (
                version.upper() != "HTTP/1.0"
                and headers.get("connection", "").lower() != "close"
            )
            try:
                status, payload, extra = await _handle(
                    gateway, method, path, headers, body
                )
            except _HttpError as exc:
                status, payload, extra = exc.status, {"error": exc.message}, None
                gateway.metrics.count("errors")
            except Exception as exc:  # never kill the accept loop
                status, payload, extra = 500, {"error": f"internal error: {exc}"}, None
                gateway.metrics.count("errors")
            gateway.metrics.count(f"http_{status}")
            try:
                writer.write(_encode(
                    status, payload, keep_alive=keep_alive, extra_headers=extra
                ))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                dropped = True
                break
            if not keep_alive:
                break
    except asyncio.CancelledError:
        pass  # gateway stop, not a client drop
    finally:
        if dropped:
            gateway.metrics.count("connections_dropped")
        try:
            writer.close()
        except Exception:
            pass


async def _handle(
    gateway: "GatewayServer",
    method: str,
    path: str,
    headers: dict[str, str],
    body: bytes,
) -> tuple[int, dict, Optional[dict[str, str]]]:
    route = path.split("?", 1)[0].rstrip("/") or "/"
    query = path.split("?", 1)[1] if "?" in path else ""
    if route == "/v1/decide":
        if method != "POST":
            raise _HttpError(405, "POST required")
        data = _json_body(body)
        if "tenant" not in data and "x-repro-tenant" in headers:
            data["tenant"] = headers["x-repro-tenant"]
        try:
            model = DecideModel.from_wire(data, default_id="http-decide")
        except ModelValidationError as exc:
            raise _HttpError(400, str(exc))
        outcome, responses = await gateway.decide(model)
        first = responses[0] if responses else {"type": "error", "error": "no response"}
        if outcome == "rejected":
            retry_ms = first.get("retry_after_ms", 0) or 0
            return 429, first, {"Retry-After": str(max(1, math.ceil(retry_ms / 1000)))}
        if first.get("type") == "error":
            if "shard unavailable" in first.get("error", ""):
                return 503, first, None
            return 400, first, None
        return 200, first, None
    if route in ("/v1/schemas", "/v1/schema"):
        if method != "POST":
            raise _HttpError(405, "POST required")
        data = _json_body(body)
        try:
            model = SchemaModel.from_wire(data, default_id="http-schema")
        except ModelValidationError as exc:
            raise _HttpError(400, str(exc))
        try:
            responses = await gateway.register_schema(model)
        except ShardUnavailable as exc:
            return 503, {"error": f"shard unavailable: {exc}"}, None
        first = responses[0] if responses else {"type": "error", "error": "no response"}
        if first.get("type") == "error":
            return 400, first, None
        return 200, first, None
    if route == "/v1/stats":
        if method != "GET":
            raise _HttpError(405, "GET required")
        payload = gateway.stats()
        if "deep=1" in query:
            payload["shard_snapshots"] = await gateway.shard_stats()
        return 200, payload, None
    if route == "/v1/healthz":
        if method != "GET":
            raise _HttpError(405, "GET required")
        return 200, {"ok": True, "shards": gateway.config.shards}, None
    if route == "/v1/readyz":
        if method != "GET":
            raise _HttpError(405, "GET required")
        ready, payload = gateway.readiness()
        return (200 if ready else 503), payload, None
    raise _HttpError(404, f"no route {route!r}")
