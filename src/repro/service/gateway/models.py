"""Typed request models for the gateway facades.

The sequential wire protocol validates requests field-by-field inside
:func:`repro.service.protocol.parse_request`; the gateway's two facades
(JSONL and HTTP/JSON) instead go through small *typed models* in the style
of the robosystems API models: each model names its fields, owns its
validation (type checks, length caps, budget bounds), and normalizes into
the canonical wire dict the shard workers consume.  Validation failures
raise :class:`ModelValidationError` (a :class:`ProtocolError` subclass, so
existing error plumbing applies) with a message naming the offending
field.

The caps exist because the gateway fronts untrusted concurrent clients: a
50 kB query string or a year-long timeout must be rejected at the edge,
before it occupies a shard queue slot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.service.protocol import (
    DEFAULT_TENANT,
    ProtocolError,
    _TENANT_RE,
    _METHODS,
    _OPTION_FIELDS,
    _validate_budgets,
)

MAX_QUERY_LENGTH = 16384
"""Longest accepted query string (either side).  Far beyond any workload
in the repo — the paper's examples are tens of characters — but small
enough that a hostile client cannot park megabytes in a shard queue."""

MAX_SCHEMA_CIS = 4096
"""Most concept inclusions accepted in one inline/registered schema."""

MAX_TIMEOUT_MS = 24 * 60 * 60 * 1000
"""Largest accepted per-decision timeout (24h): effectively unbounded for
real use while keeping the value arithmetic-safe."""

MAX_PRIORITY = 1 << 16


class ModelValidationError(ProtocolError):
    """A typed-model field failed validation."""


def _require_str(data: dict, name: str, *, max_len: int) -> str:
    value = data.get(name)
    if not isinstance(value, str) or not value.strip():
        raise ModelValidationError(f"field {name!r} must be a non-empty string")
    if len(value) > max_len:
        raise ModelValidationError(
            f"field {name!r} exceeds {max_len} characters ({len(value)})"
        )
    return value


def _validate_tenant(value: Any) -> str:
    if value is None:
        return DEFAULT_TENANT
    if not isinstance(value, str) or not _TENANT_RE.match(value):
        raise ModelValidationError(
            "field 'tenant' must be 1-64 characters of [A-Za-z0-9._-]"
        )
    return value


@dataclass
class DecideModel:
    """One validated containment-decision request."""

    id: str
    lhs: str
    rhs: str
    tenant: str = DEFAULT_TENANT
    schema: Optional[dict] = None
    schema_ref: Optional[str] = None
    method: str = "auto"
    priority: int = 0
    options: dict = field(default_factory=dict)

    @classmethod
    def from_wire(cls, data: dict, default_id: str = "http-1") -> "DecideModel":
        if not isinstance(data, dict):
            raise ModelValidationError("decide payload must be a JSON object")
        lhs = _require_str(data, "lhs", max_len=MAX_QUERY_LENGTH)
        rhs = _require_str(data, "rhs", max_len=MAX_QUERY_LENGTH)
        tenant = _validate_tenant(data.get("tenant"))
        schema = data.get("schema")
        if schema is not None:
            if not isinstance(schema, dict):
                raise ModelValidationError("field 'schema' must be an object or null")
            cis = schema.get("cis")
            if isinstance(cis, list) and len(cis) > MAX_SCHEMA_CIS:
                raise ModelValidationError(
                    f"field 'schema' exceeds {MAX_SCHEMA_CIS} concept inclusions"
                )
        schema_ref = data.get("schema_ref")
        if schema_ref is not None and not isinstance(schema_ref, str):
            raise ModelValidationError("field 'schema_ref' must be a string")
        if schema is not None and schema_ref is not None:
            raise ModelValidationError(
                "give either an inline schema or a schema_ref"
            )
        method = data.get("method", "auto")
        if method not in _METHODS:
            raise ModelValidationError(f"unknown method {method!r}")
        priority = data.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ModelValidationError("field 'priority' must be an integer")
        if abs(priority) > MAX_PRIORITY:
            raise ModelValidationError(
                f"field 'priority' must be within ±{MAX_PRIORITY}"
            )
        options = data.get("options") or {}
        if not isinstance(options, dict):
            raise ModelValidationError("field 'options' must be an object")
        unknown = sorted(set(options) - set(_OPTION_FIELDS))
        if unknown:
            raise ModelValidationError(f"unknown options: {', '.join(unknown)}")
        try:
            _validate_budgets(options)
        except ProtocolError as exc:
            raise ModelValidationError(str(exc)) from exc
        timeout_ms = options.get("timeout_ms")
        if timeout_ms is not None and timeout_ms > MAX_TIMEOUT_MS:
            raise ModelValidationError(
                f"option 'timeout_ms' exceeds the {MAX_TIMEOUT_MS} ms cap"
            )
        return cls(
            id=str(data.get("id", default_id)),
            lhs=lhs,
            rhs=rhs,
            tenant=tenant,
            schema=schema,
            schema_ref=schema_ref,
            method=method,
            priority=priority,
            options=dict(options),
        )

    def to_wire(self) -> dict:
        payload: dict[str, Any] = {
            "type": "decide",
            "id": self.id,
            "lhs": self.lhs,
            "rhs": self.rhs,
            "tenant": self.tenant,
            "method": self.method,
            "priority": self.priority,
            "options": self.options,
        }
        if self.schema is not None:
            payload["schema"] = self.schema
        if self.schema_ref is not None:
            payload["schema_ref"] = self.schema_ref
        return payload

    def wire_line(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True, separators=(",", ":"))


@dataclass
class SchemaModel:
    """One validated schema registration."""

    id: str
    ref: str
    tbox: dict
    tenant: str = DEFAULT_TENANT

    @classmethod
    def from_wire(cls, data: dict, default_id: str = "http-1") -> "SchemaModel":
        if not isinstance(data, dict):
            raise ModelValidationError("schema payload must be a JSON object")
        ref = _require_str(data, "ref", max_len=256)
        tbox = data.get("tbox")
        if not isinstance(tbox, dict):
            raise ModelValidationError("field 'tbox' must be an object")
        cis = tbox.get("cis")
        if isinstance(cis, list) and len(cis) > MAX_SCHEMA_CIS:
            raise ModelValidationError(
                f"field 'tbox' exceeds {MAX_SCHEMA_CIS} concept inclusions"
            )
        return cls(
            id=str(data.get("id", default_id)),
            ref=ref,
            tbox=tbox,
            tenant=_validate_tenant(data.get("tenant")),
        )

    def to_wire(self) -> dict:
        return {
            "type": "schema",
            "id": self.id,
            "ref": self.ref,
            "tbox": self.tbox,
            "tenant": self.tenant,
        }

    def wire_line(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True, separators=(",", ":"))
