"""The schema-sharded kernel worker fleet.

A :class:`ShardFleet` owns N *shard workers*, each a separate process (or
a thread in ``processes=False`` mode) running its own
:class:`repro.service.server.ContainmentServer` — its own schema sessions,
kernel memos, vec-table warms, and (when caching is on) its own journal
segment under ``<cache_dir>/shard-<i>/``.  Decisions are routed by
**schema fingerprint** (:func:`shard_for`), so every decision against a
given TBox always lands on the shard whose sessions and memos are already
warm for it: hot schemas stay cache-local instead of thrashing across a
worker pool.

Transport is a socketpair speaking JSONL *envelopes*::

    → {"corr": 17, "op": "req", "req": "<one wire-protocol line>"}
    ← {"corr": 17, "responses": [<response dict>, ...]}

The worker handles each envelope with the transport-independent
``ContainmentServer.handle_line`` + an immediate scheduler drain, so one
envelope in yields exactly one envelope out carrying every response the
request produced (a ``decide`` answers with its verdict right away —
cross-request amortization still happens through the server's lifetime
dedup memo, session table, and journal).  ``op: "stats"`` envelopes
return the worker's full metrics snapshot for fleet-wide aggregation.

Fork hygiene: a forked worker inherits every file descriptor the gateway
process had open — including the *parent* ends of sibling shards'
socketpairs.  Left open, those copies would keep a sibling's stream alive
after its worker died, so the parent would never see the EOF that triggers
recovery.  Every worker therefore receives the list of foreign socketpair
fds and closes them before serving (thread mode shares the address space
and skips this).

Resilience reuses the PR 5 machinery:

* the worker loop passes a kill callback to the ``gateway.shard.handle``
  fault site, so a chaos plan can crash (``kill_worker``) or stall
  (``delay``) a shard deterministically;
* the parent watches each shard's stream — on EOF/reset it **respawns**
  the worker with capped exponential backoff, replays every schema
  registration the fleet has seen, and resubmits the envelopes that were
  in flight (decisions are deterministic, so a resubmit is safe), counted
  under ``shard_count(i, "respawns")``;
* after ``max_respawns`` losses the shard is marked dead and pending +
  future submissions fail with :class:`ShardUnavailable`, which the
  gateway answers as a structured error (degraded, never wedged).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import socket
import threading
from pathlib import Path
from typing import Optional, Union

from repro.resilience import faults
from repro.service.metrics import ServiceMetrics

_ENVELOPE_LIMIT = 16 * 1024 * 1024
"""Stream reader line limit for shard envelopes (a schema broadcast can
carry a few thousand CIs; verdict countermodels can be large)."""

KILL_SITE = "gateway.shard.handle"
"""Fault site fired by the worker loop around each envelope; its
``kill_worker`` action takes the whole worker down (``os._exit`` in
process mode, ``SystemExit`` in thread mode)."""


class ShardUnavailable(RuntimeError):
    """The target shard is dead (respawn budget exhausted) or stopping."""


def shard_for(key_material: str, count: int) -> int:
    """Deterministic shard index for a schema identity string.

    Stable across processes and runs (sha256, not ``hash()``), so a
    restarted gateway routes the same schema to the same shard and its
    journal segment."""
    if count <= 1:
        return 0
    digest = hashlib.sha256(key_material.encode()).digest()
    return int.from_bytes(digest[:8], "big") % count


def _shard_server(config: dict, shard_id: int):
    """Build the worker-side ContainmentServer from the fleet config."""
    from repro.service.server import ContainmentServer

    cache_dir = config.get("cache_dir")
    if cache_dir is not None:
        cache_dir = str(Path(cache_dir) / f"shard-{shard_id}")
    return ContainmentServer(
        cache_dir=cache_dir,
        use_cache=config.get("use_cache", False),
        workers=config.get("workers"),
        pool_reuse=config.get("pool_reuse", False),
        default_timeout_ms=config.get("default_timeout_ms"),
        backend=config.get("backend"),
        semantic_cache=config.get("semantic_cache", True),
        audit=config.get("audit", True),
    )


def _worker_loop(
    sock: socket.socket,
    shard_id: int,
    config: dict,
    close_fds: tuple[int, ...] = (),
) -> None:
    """The shard worker: envelopes in, envelopes out, until EOF.

    Runs in a forked process (process mode) or a daemon thread (inline
    mode).  Never lets a request error escape — ``handle_line`` already
    guarantees that — and treats a broken parent pipe as shutdown."""
    from repro.kernel.parallel import set_pool_reuse
    from repro.obs import PhaseAggregator, active_collector, install

    in_process = config.get("processes", True)
    if in_process:
        for fd in close_fds:
            try:
                os.close(fd)
            except OSError:
                pass

    server = _shard_server(config, shard_id)
    stream = server.new_stream()
    pool_reuse = config.get("pool_reuse", False)
    if pool_reuse:
        set_pool_reuse(True)
    if in_process and active_collector() is None:
        install(PhaseAggregator())

    def _die() -> None:
        # the kill_worker fault action: vanish like a SIGKILLed process.
        # In inline (thread) mode exiting the process would take the test
        # runner with it, so the thread drops its socket and returns.
        if in_process:
            os._exit(1)
        sock.close()
        raise SystemExit

    reader = sock.makefile("r", encoding="utf-8")
    writer = sock.makefile("w", encoding="utf-8")
    try:
        for raw in reader:
            raw = raw.strip()
            if not raw:
                continue
            try:
                envelope = json.loads(raw)
                corr = envelope["corr"]
                op = envelope.get("op", "req")
            except (ValueError, KeyError, TypeError):
                continue  # a torn envelope has no corr to answer
            try:
                faults.maybe_fault(KILL_SITE, kill=_die)
            except faults.FaultInjected as exc:
                reply = {"corr": corr, "responses": [
                    {"type": "error", "error": f"shard fault: {exc}"}
                ]}
            else:
                if op == "stats":
                    reply = {"corr": corr, "stats": server.stats()}
                elif op == "ping":
                    reply = {"corr": corr, "responses": [{"type": "pong"}]}
                else:
                    responses, _stop = server.handle_line(envelope["req"], stream)
                    responses.extend(server.scheduler.drain())
                    reply = {"corr": corr, "responses": responses}
            try:
                writer.write(json.dumps(reply, sort_keys=True,
                                        separators=(",", ":")) + "\n")
                writer.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                break
    except (SystemExit, KeyboardInterrupt):
        pass
    finally:
        if pool_reuse:
            set_pool_reuse(False)
        for s in (writer, reader):
            try:
                s.close()
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass


class _Shard:
    """Parent-side handle on one worker: stream, pending futures, respawn
    bookkeeping.  All coroutine methods run on the gateway's event loop."""

    def __init__(self, fleet: "ShardFleet", shard_id: int) -> None:
        self.fleet = fleet
        self.id = shard_id
        self.parent_sock: Optional[socket.socket] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.pending: dict[int, tuple[asyncio.Future, dict]] = {}
        self.worker: Union[multiprocessing.Process, threading.Thread, None] = None
        self.respawns = 0
        self.dead = False
        self._reader_task: Optional[asyncio.Task] = None
        self._corr = 0
        self._write_lock = asyncio.Lock()

    # ------------------------------------------------------------- #
    # lifecycle

    async def _spawn(self) -> None:
        """Create the socketpair, launch the worker, open the stream."""
        parent, child = socket.socketpair()
        self.parent_sock = parent
        if self.fleet.processes:
            # the forked child inherits the parent ends of every sibling's
            # socketpair; hand it the list so it can close them (see the
            # module docstring on fork hygiene)
            foreign = tuple(
                s.parent_sock.fileno()
                for s in self.fleet.shards
                if s is not self and s.parent_sock is not None
            ) + (parent.fileno(),)
            ctx = multiprocessing.get_context("fork")
            self.worker = ctx.Process(
                target=_worker_loop,
                args=(child, self.id, self.fleet.worker_config, foreign),
                daemon=True,
                name=f"repro-shard-{self.id}",
            )
            self.worker.start()
            child.close()
        else:
            self.worker = threading.Thread(
                target=_worker_loop,
                args=(child, self.id, self.fleet.worker_config),
                daemon=True,
                name=f"repro-shard-{self.id}",
            )
            self.worker.start()
        self.reader, self.writer = await asyncio.open_connection(
            sock=parent, limit=_ENVELOPE_LIMIT
        )

    async def start(self) -> None:
        await self._spawn()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def stop(self) -> None:
        self.dead = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._close_stream()
        worker = self.worker
        loop = asyncio.get_running_loop()
        # join off-loop: a blocking join here would also stop the transport
        # close from ever reaching the worker as EOF
        if isinstance(worker, multiprocessing.Process):
            await loop.run_in_executor(None, worker.join, 5)
            if worker.is_alive():
                worker.terminate()
                await loop.run_in_executor(None, worker.join, 5)
        elif isinstance(worker, threading.Thread):
            await loop.run_in_executor(None, worker.join, 5)
        self._fail_pending(ShardUnavailable(f"shard {self.id} stopped"))

    def _close_stream(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:
                pass
        if self.parent_sock is not None:
            # close the fd *now*, not on the next loop iteration: the worker
            # (thread or process) unblocks on EOF immediately
            try:
                self.parent_sock.close()
            except OSError:
                pass
        self.reader = None
        self.writer = None
        self.parent_sock = None

    # ------------------------------------------------------------- #
    # I/O

    async def submit(self, op: str, payload: Optional[str] = None) -> dict:
        """Send one envelope; resolves with the reply envelope dict."""
        if self.dead:
            raise ShardUnavailable(f"shard {self.id} is unavailable")
        self._corr += 1
        corr = self._corr
        envelope = {"corr": corr, "op": op}
        if payload is not None:
            envelope["req"] = payload
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.pending[corr] = (future, envelope)
        await self._write(envelope)
        return await future

    async def _write(self, envelope: dict) -> None:
        line = json.dumps(envelope, sort_keys=True, separators=(",", ":")) + "\n"
        async with self._write_lock:
            if self.writer is None:
                return  # the read loop will respawn and resubmit
            try:
                self.writer.write(line.encode())
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # EOF surfaces in the read loop, which handles recovery

    async def _read_loop(self) -> None:
        while True:
            reader = self.reader
            if reader is None:
                return
            try:
                raw = await reader.readline()
            except (ConnectionResetError, BrokenPipeError, OSError, ValueError):
                raw = b""
            if not raw:
                if self.dead:
                    return
                await self._recover()
                if self.dead:
                    return
                continue
            try:
                reply = json.loads(raw)
                corr = reply["corr"]
            except (ValueError, KeyError, TypeError):
                continue
            entry = self.pending.pop(corr, None)
            if entry is None:
                continue
            future, _envelope = entry
            if not future.done():
                future.set_result(reply)

    # ------------------------------------------------------------- #
    # recovery

    async def _recover(self) -> None:
        """The worker died: respawn (bounded), replay schemas, resubmit."""
        self._close_stream()
        worker = self.worker
        if isinstance(worker, multiprocessing.Process):
            worker.join(timeout=5)
        self._reconcile_fault_accounting()
        self.respawns += 1
        metrics = self.fleet.metrics
        metrics.shard_count(self.id, "respawns")
        metrics.count("gateway_shard_respawns")
        if self.respawns > self.fleet.max_respawns:
            self.dead = True
            metrics.shard_count(self.id, "dead")
            self._notify_loss(dead=True)
            self._fail_pending(
                ShardUnavailable(
                    f"shard {self.id} lost {self.respawns} times; giving up"
                )
            )
            return
        self._notify_loss(dead=False)
        backoff = min(1.0, self.fleet.respawn_backoff_s * (2 ** (self.respawns - 1)))
        await asyncio.sleep(backoff)
        await self._spawn()
        # a fresh worker has no sessions: replay every schema registration
        # (fire-and-forget envelopes with fresh corrs not tracked in
        # pending — their acks are dropped by the read loop)
        for line in self.fleet.schema_log:
            self._corr += 1
            await self._write({"corr": self._corr, "op": "req", "req": line})
        # resubmit everything that was in flight when the worker died
        for corr, (_future, envelope) in sorted(self.pending.items()):
            await self._write(envelope)

    def _notify_loss(self, dead: bool) -> None:
        callback = self.fleet.on_worker_loss
        if callback is None:
            return
        try:
            callback(self.id, dead)
        except Exception:  # health bookkeeping must never break recovery
            pass

    async def restart(self) -> None:
        """Cold respawn for a quarantine-recovery probe: discard whatever
        worker (or corpse) is attached, reset the respawn budget, replay
        the schema log, and resubmit anything still pending.  Unlike
        :meth:`_recover` this also revives a shard already marked dead —
        the health state machine decides *when* to re-admit it, based on
        the self-test the gateway runs against the fresh worker."""
        self.dead = True  # park the read loop / reject submits mid-restart
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._close_stream()
        worker = self.worker
        loop = asyncio.get_running_loop()
        if isinstance(worker, multiprocessing.Process):
            if worker.is_alive():
                worker.terminate()
            await loop.run_in_executor(None, worker.join, 5)
        elif isinstance(worker, threading.Thread):
            # a thread worker exits on its socket's EOF (already closed)
            await loop.run_in_executor(None, worker.join, 5)
        self.respawns = 0
        self.dead = False
        await self._spawn()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self.fleet.metrics.shard_count(self.id, "cold_restarts")
        for line in self.fleet.schema_log:
            self._corr += 1
            await self._write({"corr": self._corr, "op": "req", "req": line})
        for _corr, (_future, envelope) in sorted(self.pending.items()):
            await self._write(envelope)

    def _reconcile_fault_accounting(self) -> None:
        """Mirror a kill-site firing into the parent's fault plan.

        A forked worker fires ``gateway.shard.handle`` against its *copy*
        of the plan and dies with that accounting, so the next fork would
        inherit the rule unfired and re-kill forever even with ``times=1``.
        The parent observes the death and replays the bookkeeping, so
        bounded kill rules stay bounded across respawns (``times=-1``
        still kills every incarnation, by design)."""
        plan = faults.active_plan()
        if plan is None:
            return
        rule = plan.rules.get(KILL_SITE)
        if rule is not None and not rule.exhausted():
            rule.hits += 1
            rule.fired += 1

    def _fail_pending(self, error: Exception) -> None:
        pending, self.pending = self.pending, {}
        for future, _envelope in pending.values():
            if not future.done():
                future.set_exception(
                    error if isinstance(error, ShardUnavailable)
                    else ShardUnavailable(str(error))
                )


class ShardFleet:
    """N shard workers + the routing table over them."""

    def __init__(
        self,
        count: int = 2,
        *,
        processes: bool = True,
        cache_dir: Union[None, str, Path] = None,
        use_cache: bool = False,
        workers: Union[int, str, None] = None,
        pool_reuse: bool = False,
        default_timeout_ms: Optional[int] = None,
        backend: Optional[str] = None,
        semantic_cache: bool = True,
        audit: bool = True,
        metrics: Optional[ServiceMetrics] = None,
        max_respawns: int = 5,
        respawn_backoff_s: float = 0.05,
        on_worker_loss=None,
    ) -> None:
        if count < 1:
            raise ValueError("a fleet needs at least one shard")
        self.count = count
        self.processes = processes
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.max_respawns = max_respawns
        self.respawn_backoff_s = respawn_backoff_s
        self.on_worker_loss = on_worker_loss
        """Optional ``(shard_id, dead: bool)`` callback invoked on the
        event loop every time a worker is lost — the gateway's health
        state machine subscribes here."""
        self.worker_config = {
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
            "use_cache": use_cache,
            "workers": workers,
            "pool_reuse": pool_reuse,
            "default_timeout_ms": default_timeout_ms,
            "backend": backend,
            "semantic_cache": semantic_cache,
            "audit": audit,
            "processes": processes,
        }
        self.schema_log: list[str] = []
        """Every schema-registration wire line ever broadcast, replayed
        into respawned workers so ``schema_ref`` survives a crash."""
        self.shards = [_Shard(self, i) for i in range(count)]
        self.started = False

    async def start(self) -> None:
        for shard in self.shards:
            await shard.start()
        self.started = True

    async def stop(self) -> None:
        self.started = False
        for shard in self.shards:
            await shard.stop()

    # ------------------------------------------------------------- #
    # routing + submission

    def shard_id_for(self, key_material: str) -> int:
        return shard_for(key_material, self.count)

    async def restart_shard(self, shard_id: int) -> None:
        """Cold-respawn one shard (see :meth:`_Shard.restart`)."""
        await self.shards[shard_id].restart()

    async def submit(self, shard_id: int, request_line: str) -> list[dict]:
        """Run one wire-protocol line on a shard; returns its responses."""
        shard = self.shards[shard_id]
        self.metrics.shard_count(shard_id, "dispatched")
        reply = await shard.submit("req", request_line)
        self.metrics.shard_count(shard_id, "completed")
        return reply.get("responses", [])

    async def broadcast_schema(self, request_line: str) -> list[dict]:
        """Register a schema on every shard (so ``schema_ref`` resolves
        wherever later decisions land); returns shard 0's responses."""
        self.schema_log.append(request_line)
        replies = await asyncio.gather(
            *(shard.submit("req", request_line) for shard in self.shards)
        )
        return replies[0].get("responses", [])

    async def stats(self) -> list[dict]:
        """Per-shard metrics snapshots (dead shards report ``None``)."""
        snapshots = []
        for shard in self.shards:
            if shard.dead:
                snapshots.append({"shard": shard.id, "stats": None,
                                  "respawns": shard.respawns})
                continue
            try:
                reply = await shard.submit("stats")
                snapshots.append({"shard": shard.id,
                                  "stats": reply.get("stats"),
                                  "respawns": shard.respawns})
            except ShardUnavailable:
                snapshots.append({"shard": shard.id, "stats": None,
                                  "respawns": shard.respawns})
        return snapshots
