"""Per-session service counters and latency percentiles.

One :class:`ServiceMetrics` instance lives for the lifetime of a server (or
one ``repro batch`` run) and is shared by the scheduler, the session
manager, and the persistent cache.  Everything is counter-or-list state
guarded by one lock — cheap enough to update on every request, rich enough
to answer the ``stats`` wire request and the ``--metrics-json`` shutdown
dump:

* request traffic: received / decided / errored, per request type;
* amortization: persistent-cache hits, in-batch dedup collapses, schema
  sessions created vs. reused (= kernel/memo warm reuse);
* queue health: current and high-water queue depth;
* latency: per-request wall-clock percentiles (p50/p90/p95/p99/max).

The multi-tenant gateway adds three labeled families on top of the flat
counters (all optional — the sequential server never touches them):

* **per-tenant counters** (:meth:`ServiceMetrics.tenant_count`) —
  admitted / rejected / dequeued / completed traffic per tenant, the
  raw material for the fairness assertions in E23;
* **per-shard counters** (:meth:`ServiceMetrics.shard_count`) —
  dispatch / completion / respawn traffic per worker shard;
* **named gauges** (:meth:`ServiceMetrics.gauge_set`) with high-water
  tracking — in-flight decisions, per-tenant queue depths;
* **latency split by admission outcome**
  (``observe_latency_ms(..., outcome=...)``) — an ``overloaded``
  rejection answered in microseconds must not drag down (or hide) the
  percentiles of admitted work, so each outcome keeps its own sample
  list and the snapshot reports them side by side.

Percentiles use the nearest-rank method on the recorded sample list —
deterministic and exact for the modest request counts a session sees; the
sample lists are capped to keep a very long-lived server bounded.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Optional

_MAX_LATENCY_SAMPLES = 65536

_PERCENTILE_FRACTIONS = (("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99))


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (not necessarily sorted).

    Edge cases are pinned down by direct unit tests: an empty sample list
    yields 0.0 (a metrics placeholder, not a statistic), a single sample is
    every percentile of itself, ``fraction=0.0`` yields the minimum (rank
    clamps to 1), and ``fraction=1.0`` the maximum.  Fractions outside
    [0, 1] are rejected rather than silently clamped.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


def latency_summary(samples: list[float]) -> dict:
    """The standard percentile block for one latency sample list."""
    summary = {"count": len(samples)}
    for name, fraction in _PERCENTILE_FRACTIONS:
        summary[name] = round(percentile(samples, fraction), 3)
    summary["max"] = round(max(samples), 3) if samples else 0.0
    return summary


class ServiceMetrics:
    """Thread-safe counters + latency samples for one service lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._latencies_ms: list[float] = []
        self._latencies_by_outcome: dict[str, list[float]] = {}
        self._tenant_counters: dict[str, dict[str, int]] = {}
        self._shard_counters: dict[str, dict[str, int]] = {}
        self._gauges: dict[str, float] = {}
        self._gauge_high_water: dict[str, float] = {}
        self._queue_depth = 0
        self._queue_high_water = 0

    # ------------------------------------------------------------- #
    # updates

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def tenant_count(self, tenant: str, name: str, delta: int = 1) -> None:
        """Bump a per-tenant counter (gateway traffic accounting)."""
        with self._lock:
            bucket = self._tenant_counters.setdefault(tenant, {})
            bucket[name] = bucket.get(name, 0) + delta

    def shard_count(self, shard: str, name: str, delta: int = 1) -> None:
        """Bump a per-shard counter (gateway fleet accounting)."""
        with self._lock:
            bucket = self._shard_counters.setdefault(str(shard), {})
            bucket[name] = bucket.get(name, 0) + delta

    def observe_latency_ms(
        self, elapsed_ms: float, outcome: Optional[str] = None
    ) -> None:
        """Record one request latency, optionally tagged with an admission
        outcome (``admitted`` / ``rejected`` / ...).  The overall list is
        always fed so the legacy ``latency_ms`` block stays complete."""
        with self._lock:
            if len(self._latencies_ms) < _MAX_LATENCY_SAMPLES:
                self._latencies_ms.append(elapsed_ms)
            if outcome is not None:
                samples = self._latencies_by_outcome.setdefault(outcome, [])
                if len(samples) < _MAX_LATENCY_SAMPLES:
                    samples.append(elapsed_ms)

    def gauge_set(self, name: str, value: float) -> None:
        """Set a named gauge; its high-water mark is tracked alongside."""
        with self._lock:
            self._gauges[name] = value
            previous = self._gauge_high_water.get(name)
            if previous is None or value > previous:
                self._gauge_high_water[name] = value

    def gauge_add(self, name: str, delta: float) -> float:
        """Adjust a named gauge by ``delta``; returns the new value."""
        with self._lock:
            value = self._gauges.get(name, 0) + delta
            self._gauges[name] = value
            previous = self._gauge_high_water.get(name)
            if previous is None or value > previous:
                self._gauge_high_water[name] = value
            return value

    def queue_changed(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._queue_high_water = max(self._queue_high_water, depth)

    # ------------------------------------------------------------- #
    # reads

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def tenant_counter(self, tenant: str, name: str) -> int:
        with self._lock:
            return self._tenant_counters.get(tenant, {}).get(name, 0)

    def shard_counter(self, shard: str, name: str) -> int:
        with self._lock:
            return self._shard_counters.get(str(shard), {}).get(name, 0)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0)

    def gauge_high_water(self, name: str) -> float:
        with self._lock:
            return self._gauge_high_water.get(name, 0)

    def snapshot(self) -> dict:
        """A JSON-able view: counters, queue gauges, latency percentiles,
        plus the process-wide memo counters the service relies on and the
        ``repro.obs`` registry (unified pipeline counters + per-phase
        wall-clock aggregates).  Labeled families (tenants, shards, named
        gauges, per-outcome latency) appear only once fed, so sequential
        snapshots keep their historical shape."""
        from repro.core.containment import decision_memo_stats
        from repro.obs import REGISTRY
        from repro.queries.compiled import compile_cache_stats
        from repro.queries.factorization import factorization_cache_stats

        with self._lock:
            counters = dict(sorted(self._counters.items()))
            samples = list(self._latencies_ms)
            by_outcome = {
                outcome: list(s)
                for outcome, s in sorted(self._latencies_by_outcome.items())
            }
            tenants = {
                tenant: dict(sorted(bucket.items()))
                for tenant, bucket in sorted(self._tenant_counters.items())
            }
            shards = {
                shard: dict(sorted(bucket.items()))
                for shard, bucket in sorted(self._shard_counters.items())
            }
            gauges = {
                name: {
                    "value": self._gauges[name],
                    "high_water": self._gauge_high_water.get(name, self._gauges[name]),
                }
                for name in sorted(self._gauges)
            }
            queue = {
                "depth": self._queue_depth,
                "high_water": self._queue_high_water,
            }
        payload = {
            "counters": counters,
            "queue": queue,
            "latency_ms": {
                "count": len(samples),
                "p50": round(percentile(samples, 0.50), 3),
                "p90": round(percentile(samples, 0.90), 3),
                "p99": round(percentile(samples, 0.99), 3),
                "max": round(max(samples), 3) if samples else 0.0,
            },
            "memos": {
                "decision": decision_memo_stats(),
                "compile": compile_cache_stats(),
                "factorization": factorization_cache_stats(),
            },
            "obs": REGISTRY.snapshot(),
        }
        if by_outcome:
            payload["latency_ms_by_outcome"] = {
                outcome: latency_summary(s) for outcome, s in by_outcome.items()
            }
        if tenants:
            payload["tenants"] = tenants
        if shards:
            payload["shards"] = shards
        if gauges:
            payload["gauges"] = gauges
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
