"""Per-session service counters and latency percentiles.

One :class:`ServiceMetrics` instance lives for the lifetime of a server (or
one ``repro batch`` run) and is shared by the scheduler, the session
manager, and the persistent cache.  Everything is counter-or-list state
guarded by one lock — cheap enough to update on every request, rich enough
to answer the ``stats`` wire request and the ``--metrics-json`` shutdown
dump:

* request traffic: received / decided / errored, per request type;
* amortization: persistent-cache hits, in-batch dedup collapses, schema
  sessions created vs. reused (= kernel/memo warm reuse);
* queue health: current and high-water queue depth;
* latency: per-request wall-clock percentiles (p50/p90/p99/max).

Percentiles use the nearest-rank method on the recorded sample list —
deterministic and exact for the modest request counts a session sees; the
sample list is capped to keep a very long-lived server bounded.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Optional

_MAX_LATENCY_SAMPLES = 65536


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (not necessarily sorted).

    Edge cases are pinned down by direct unit tests: an empty sample list
    yields 0.0 (a metrics placeholder, not a statistic), a single sample is
    every percentile of itself, ``fraction=0.0`` yields the minimum (rank
    clamps to 1), and ``fraction=1.0`` the maximum.  Fractions outside
    [0, 1] are rejected rather than silently clamped.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


class ServiceMetrics:
    """Thread-safe counters + latency samples for one service lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._latencies_ms: list[float] = []
        self._queue_depth = 0
        self._queue_high_water = 0

    # ------------------------------------------------------------- #
    # updates

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def observe_latency_ms(self, elapsed_ms: float) -> None:
        with self._lock:
            if len(self._latencies_ms) < _MAX_LATENCY_SAMPLES:
                self._latencies_ms.append(elapsed_ms)

    def queue_changed(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._queue_high_water = max(self._queue_high_water, depth)

    # ------------------------------------------------------------- #
    # reads

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A JSON-able view: counters, queue gauges, latency percentiles,
        plus the process-wide memo counters the service relies on and the
        ``repro.obs`` registry (unified pipeline counters + per-phase
        wall-clock aggregates)."""
        from repro.core.containment import decision_memo_stats
        from repro.obs import REGISTRY
        from repro.queries.compiled import compile_cache_stats
        from repro.queries.factorization import factorization_cache_stats

        with self._lock:
            counters = dict(sorted(self._counters.items()))
            samples = list(self._latencies_ms)
            queue = {
                "depth": self._queue_depth,
                "high_water": self._queue_high_water,
            }
        return {
            "counters": counters,
            "queue": queue,
            "latency_ms": {
                "count": len(samples),
                "p50": round(percentile(samples, 0.50), 3),
                "p90": round(percentile(samples, 0.90), 3),
                "p99": round(percentile(samples, 0.99), 3),
                "max": round(max(samples), 3) if samples else 0.0,
            },
            "memos": {
                "decision": decision_memo_stats(),
                "compile": compile_cache_stats(),
                "factorization": factorization_cache_stats(),
            },
            "obs": REGISTRY.snapshot(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
