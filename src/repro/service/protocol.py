"""The JSONL wire format of the containment service.

One JSON object per line, in both directions.  Requests:

``decide``
    ``{"type": "decide", "id": "r1", "lhs": "A(x)", "rhs": "B(x)",
    "schema": {"name": ..., "cis": [["lhs","rhs"], ...]} | null,
    "schema_ref": "s1", "method": "auto", "priority": 0,
    "options": {"workers": 1, "incremental": null, ...}}``

    Any request may carry an optional ``"tenant": "t1"`` label ([A-Za-z0-9._-],
    ≤64 chars; default ``"default"``).  The sequential server records and
    ignores it; the concurrent gateway keys admission quotas and fair
    dequeue on it.

    Queries use the text syntax (:func:`repro.queries.parser.parse_query`);
    the schema is either inline (the :func:`repro.io.tbox_to_dict` shape)
    or a ``schema_ref`` naming a previously registered schema.  ``priority``
    orders execution (smaller runs first, FIFO within a priority level);
    response *emission* stays in submission order, so output is
    deterministic regardless of priorities.  ``options.timeout_ms`` caps
    the request's wall-clock execution: a decision cut short answers with
    a normal ``verdict`` whose payload carries ``complete: false`` and
    ``deadline_expired: true`` while the rest of the batch keeps flowing.

``schema``
    ``{"type": "schema", "ref": "s1", "tbox": {...}}`` — register a schema
    once, reference it from many decide requests.

``stats`` / ``ping`` / ``flush`` / ``shutdown``
    Control requests.  ``flush`` forces the scheduler to drain and emit
    buffered verdicts; ``stats`` answers immediately with the metrics
    snapshot; ``shutdown`` drains, answers ``bye``, and stops the server.
    End-of-input acts as an implicit ``flush`` + ``shutdown``.

Responses mirror request ids: ``verdict`` (with a ``source`` of
``computed`` / ``cache`` / ``dedup`` and the :func:`repro.io.verdict_to_dict`
payload), ``stats``, ``ack`` (schema registration), ``pong``, ``error``,
and ``bye``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.core.containment import ContainmentOptions
from repro.kernel.vec import BACKENDS

WIRE_VERSION = 1

DEFAULT_TENANT = "default"
"""Tenant assigned to requests that don't name one.  The sequential server
ignores tenancy entirely; the gateway keys quotas and fair queues on it."""

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

REQUEST_TYPES = ("decide", "schema", "stats", "ping", "flush", "shutdown")

_METHODS = ("auto", "baseline", "sparse", "reduction", "direct")


class ProtocolError(ValueError):
    """A malformed request line (bad JSON, unknown type, missing fields)."""


@dataclass
class Request:
    """One parsed wire request.  ``seq`` is the server-side arrival index;
    it breaks priority ties FIFO and orders response emission."""

    type: str
    seq: int
    id: str
    lhs: Optional[str] = None
    rhs: Optional[str] = None
    schema: Optional[dict] = None
    schema_ref: Optional[str] = None
    method: str = "auto"
    priority: int = 0
    options: dict = field(default_factory=dict)
    tbox: Optional[dict] = None
    ref: Optional[str] = None
    tenant: str = DEFAULT_TENANT


_OPTION_FIELDS = (
    "workers", "incremental", "max_word_length", "max_expansions",
    "max_nodes", "max_steps", "timeout_ms", "backend", "semantic_cache",
)

_NON_NEGATIVE_INT_FIELDS = ("max_nodes", "max_steps", "timeout_ms")


def _validate_budgets(options: dict) -> None:
    for name in _NON_NEGATIVE_INT_FIELDS:
        if name not in options:
            continue
        value = options[name]
        # bool is an int subclass; reject it explicitly
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ProtocolError(f"option {name!r} must be a non-negative integer")
    if "backend" in options and options["backend"] not in BACKENDS:
        raise ProtocolError(
            f"option 'backend' must be one of {', '.join(BACKENDS)}"
        )
    if "semantic_cache" in options and not isinstance(
        options["semantic_cache"], bool
    ):
        raise ProtocolError("option 'semantic_cache' must be a boolean")


def parse_request(line: str, seq: int) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on bad input."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    rtype = data.get("type", "decide")
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(f"unknown request type {rtype!r}")
    tenant = data.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ProtocolError(
            "tenant must be 1-64 characters of [A-Za-z0-9._-]"
        )
    request = Request(
        type=rtype,
        seq=seq,
        id=str(data.get("id", f"req-{seq}")),
        tenant=tenant,
    )
    if rtype == "decide":
        for side in ("lhs", "rhs"):
            value = data.get(side)
            if not isinstance(value, str) or not value.strip():
                raise ProtocolError(f"decide request needs a query string {side!r}")
        schema = data.get("schema")
        if schema is not None and not isinstance(schema, dict):
            raise ProtocolError("schema must be a TBox object or null")
        method = data.get("method", "auto")
        if method not in _METHODS:
            raise ProtocolError(f"unknown method {method!r}")
        options = data.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("options must be an object")
        unknown = sorted(set(options) - set(_OPTION_FIELDS))
        if unknown:
            raise ProtocolError(f"unknown options: {', '.join(unknown)}")
        _validate_budgets(options)
        priority = data.get("priority", 0)
        if not isinstance(priority, int):
            raise ProtocolError("priority must be an integer")
        request = replace(
            request,
            lhs=data["lhs"],
            rhs=data["rhs"],
            schema=schema,
            schema_ref=data.get("schema_ref"),
            method=method,
            priority=priority,
            options=options,
        )
        if request.schema is not None and request.schema_ref is not None:
            raise ProtocolError("give either an inline schema or a schema_ref")
    elif rtype == "schema":
        ref = data.get("ref")
        if not isinstance(ref, str) or not ref:
            raise ProtocolError("schema registration needs a string 'ref'")
        tbox = data.get("tbox")
        if not isinstance(tbox, dict):
            raise ProtocolError("schema registration needs a 'tbox' object")
        request = replace(request, ref=ref, tbox=tbox)
    return request


def build_options(raw: dict) -> ContainmentOptions:
    """Materialize a request's ``options`` object (already whitelisted).

    ``timeout_ms`` is deliberately *not* materialized here: a deadline is
    relative to when the decision starts executing, not when the request
    was parsed, so the scheduler arms it per-execution (and excludes it
    from the decision's cache identity)."""
    options = ContainmentOptions()
    if "max_word_length" in raw:
        options = replace(options, max_word_length=int(raw["max_word_length"]))
    if "max_expansions" in raw:
        options = replace(options, max_expansions=int(raw["max_expansions"]))
    if "workers" in raw and raw["workers"] is not None:
        options = replace(options, workers=raw["workers"])
    if "incremental" in raw:
        flag = raw["incremental"]
        if flag is not None:
            flag = bool(flag)
        options = replace(options, incremental=flag)
    if "backend" in raw:
        options = replace(options, backend=str(raw["backend"]))
    if "semantic_cache" in raw:
        options = replace(options, semantic_cache=bool(raw["semantic_cache"]))
    limits = options.limits
    if "max_nodes" in raw:
        limits = replace(limits, max_nodes=int(raw["max_nodes"]))
    if "max_steps" in raw:
        limits = replace(limits, max_steps=int(raw["max_steps"]))
    if limits is not options.limits:
        options = replace(options, limits=limits)
    return options


# --------------------------------------------------------------------- #
# responses


def encode_response(payload: dict) -> str:
    """One response line (compact JSON, sorted keys — byte-deterministic)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def verdict_response(
    request_id: str,
    verdict: dict,
    source: str,
    elapsed_ms: float,
) -> dict:
    return {
        "type": "verdict",
        "id": request_id,
        "verdict": verdict,
        "source": source,
        "elapsed_ms": round(elapsed_ms, 3),
    }


def error_response(request_id: Optional[str], message: str) -> dict:
    payload: dict[str, Any] = {"type": "error", "error": message}
    if request_id is not None:
        payload["id"] = request_id
    return payload


def overloaded_response(
    request_id: Optional[str],
    reason: str,
    tenant: Optional[str] = None,
    retry_after_ms: Optional[int] = None,
) -> dict:
    """A structured admission rejection.

    ``code`` is always ``"overloaded"`` so clients can branch without
    string-matching the message; ``reason`` names the exhausted bound
    (``tenant_quota`` / ``queue_full`` / ``inflight_limit``) and
    ``retry_after_ms``, when present, is the token-bucket refill estimate.
    """
    payload: dict[str, Any] = {
        "type": "error",
        "code": "overloaded",
        "reason": reason,
        "error": f"overloaded: {reason}",
    }
    if request_id is not None:
        payload["id"] = request_id
    if tenant is not None:
        payload["tenant"] = tenant
    if retry_after_ms is not None:
        payload["retry_after_ms"] = int(retry_after_ms)
    return payload


def draining_response(request_id: Optional[str]) -> dict:
    """A structured drain rejection: the gateway received SIGTERM and is
    letting in-flight decisions finish; new work should go elsewhere.

    ``code`` is ``"draining"`` so load balancers and retrying clients can
    branch without string-matching (the same contract as ``overloaded``);
    a drained gateway also fails its ``/v1/readyz`` probe.
    """
    payload: dict[str, Any] = {
        "type": "error",
        "code": "draining",
        "error": "draining: gateway is shutting down; retry against another instance",
    }
    if request_id is not None:
        payload["id"] = request_id
    return payload
