"""Decision scheduling: dedup, priority order, cache consult, dispatch.

The scheduler buffers ``decide`` requests and drains them in *(priority,
arrival)* order — smaller priority first, FIFO within a level.  Each unique
decision identity (:func:`repro.core.containment.decision_key`) is resolved
exactly once per server lifetime:

1. **dedup** — an identical earlier request already produced the verdict
   (collapsed, zero work);
2. **cache** — the persistent journal has it from a previous process
   (deserialized, no search runs);
3. **semantic** — no exact hit, but the session's containment lattice
   (:mod:`repro.cache.semantic`) *infers* the answer from already-decided
   premises: transitivity through a cached certain True, or replay of a
   cached countermodel against the new left-hand side.  Both rules are
   proofs, so the verdict is certain — and it cost an evaluation, not a
   search.  Semantic verdicts are never written back to the dedup memo or
   the journal: they are derived facts, not fresh decisions, and a later
   exact request should still record the search-produced verdict;
4. **computed** — dispatched through :func:`repro.core.containment.is_contained`,
   which fans its per-candidate subproblems out over the shared
   ``kernel.parallel`` pool when the request asks for workers.  Computed
   deterministic verdicts feed the lattice (and its on-disk journal) as
   premises for future inference.

Responses are *emitted* in arrival order regardless of execution order, so
a batch's output is byte-deterministic and comparable line-by-line against
sequential ``is_contained`` calls — the bit-identical contract the E18
benchmark enforces.

Request validation (query parse, schema resolution, option whitelisting)
happens at submit time so malformed requests fail fast with an ``error``
response and never occupy the queue.

When an auditor is attached (:class:`repro.resilience.audit.VerdictAuditor`,
the service default), every False verdict about to be served from the
dedup memo, the persistent journal, or a fresh computation first has its
countermodel re-verified by the compiled matchers.  A failed journal entry
is quarantined and the request falls through to a fresh decision; a failed
*computed* verdict triggers one re-decide on the reference configuration
(bitset kernel, serial, caches bypassed), and only if *that* also fails
does the request answer with a structured error.  Semantic hits need no
serve-time gate: the lattice replays countermodels against the new lhs at
lookup time, which *is* the audit.  A deterministic 1-in-N sample of
freshly computed complete verdicts is additionally re-decided on the
mirror kernel backend (bitset↔vec); on a mismatch the reference answer is
the one served and stored.

Resolution is fail-soft: transient infrastructure failures (a broken
process pool, an injected fault) are retried with capped exponential
backoff; anything else answers that one request with a structured
``error`` response while the rest of the batch keeps flowing.  A request
with a ``timeout_ms`` budget (own or server default) runs under a
:class:`repro.resilience.Deadline` armed at execution time; a verdict the
deadline actually cut short is emitted normally (``complete: false``,
``deadline_expired: true``) but excluded from the dedup memo and the
persistent journal, which only ever hold deterministic results.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.core.containment import (
    ContainmentOptions,
    decision_key,
    decision_key_parts,
    is_contained,
    supported_combination,
)
from repro.core.reduction import query_key
from repro.io import FORMAT_VERSION, query_to_text, verdict_to_dict
from repro.kernel.memo import BoundedMemo
from repro.obs import REGISTRY, span
from repro.queries.parser import parse_query
from repro.queries.ucrpq import UCRPQ
from repro.resilience import FaultInjected, faults
from repro.resilience.audit import AuditFailure, VerdictAuditor
from repro.resilience.deadline import Deadline
from repro.service.cache import DecisionCache, semantic_group_digest
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    ProtocolError,
    Request,
    build_options,
    error_response,
    verdict_response,
)
from repro.service.sessions import SchemaSession, SessionManager

_TRANSIENT_ERRORS = (BrokenProcessPool, OSError, FaultInjected)
"""Exception classes the scheduler treats as retryable infrastructure
failures (a lost pool, a transient OS hiccup, an injected fault) as opposed
to deterministic decision errors."""


@dataclass(order=True)
class _Item:
    priority: int
    seq: int
    request: Request = field(compare=False)
    session: Optional[SchemaSession] = field(compare=False, default=None)
    lhs: Optional[UCRPQ] = field(compare=False, default=None)
    rhs: Optional[UCRPQ] = field(compare=False, default=None)
    options: Optional[ContainmentOptions] = field(compare=False, default=None)
    key: Optional[tuple] = field(compare=False, default=None)
    timeout_ms: Optional[int] = field(compare=False, default=None)


class DecisionScheduler:
    """Buffers validated decide requests; drains them deduped and ordered."""

    def __init__(
        self,
        sessions: Optional[SessionManager] = None,
        cache: Optional[DecisionCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        workers: Union[int, str, None] = None,
        default_timeout_ms: Optional[int] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        backend: Optional[str] = None,
        semantic_cache: bool = True,
        auditor: Optional[VerdictAuditor] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.sessions = sessions if sessions is not None else SessionManager(self.metrics)
        self.cache = cache
        self.default_workers = workers
        self.default_timeout_ms = default_timeout_ms
        """Wall-clock cap applied to requests without their own
        ``options.timeout_ms``; ``None`` leaves them unbounded."""
        self.default_backend = backend
        """Kernel backend applied to requests without their own
        ``options.backend``; never part of decision identity."""
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.semantic_cache = semantic_cache
        """Server-level switch for the per-session semantic lattices; a
        request can additionally opt out via ``options.semantic_cache``."""
        self.auditor = auditor
        """Optional integrity auditor gating every served False verdict
        (and A/B-sampling computed ones); ``None`` disables auditing."""
        self._queue: list[_Item] = []
        self._results = BoundedMemo(max_entries=8192, name="service.results")
        """Lifetime verdict-dict memo keyed by decision key (dedup source)."""

    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------- #
    # intake

    def submit(self, request: Request) -> Optional[dict]:
        """Validate and enqueue one decide request.

        Returns ``None`` on success or an ``error`` response dict; nothing
        is enqueued on error.
        """
        self.metrics.count("decide_requests")
        try:
            item = self._validate(request)
        except (ProtocolError, ValueError) as exc:
            self.metrics.count("errors")
            return error_response(request.id, str(exc))
        heapq.heappush(self._queue, item)
        self.metrics.queue_changed(len(self._queue))
        return None

    def _validate(self, request: Request) -> _Item:
        if request.schema_ref is not None:
            session = self.sessions.by_ref(request.schema_ref)
            if session is None:
                raise ProtocolError(f"unknown schema_ref {request.schema_ref!r}")
        else:
            session = self.sessions.session_for(request.schema)
        try:
            lhs = parse_query(request.lhs)
            rhs = parse_query(request.rhs)
        except Exception as exc:
            raise ProtocolError(f"query parse error: {exc}") from exc
        options = build_options(request.options)
        if "workers" not in request.options and self.default_workers is not None:
            options = replace(options, workers=self.default_workers)
        if "backend" not in request.options and self.default_backend is not None:
            options = replace(options, backend=self.default_backend)
        key = decision_key(
            lhs, rhs,
            session.tbox if session is not None else None,
            method=request.method,
            options=options,
        )
        timeout_ms = request.options.get("timeout_ms", self.default_timeout_ms)
        return _Item(
            priority=request.priority,
            seq=request.seq,
            request=request,
            session=session,
            lhs=lhs,
            rhs=rhs,
            options=options,
            key=key,
            timeout_ms=timeout_ms,
        )

    # ------------------------------------------------------------- #
    # drain

    def drain(self) -> list[dict]:
        """Resolve every buffered request; responses in arrival order."""
        items: list[_Item] = []
        while self._queue:
            items.append(heapq.heappop(self._queue))
        self.metrics.queue_changed(0)
        responses = [self._resolve(item) for item in items]
        responses.sort(key=lambda pair: pair[0])
        return [response for _, response in responses]

    def _resolve(self, item: _Item) -> tuple[int, dict]:
        start = time.perf_counter()
        with span("service.decide", priority=item.priority) as sp:
            try:
                verdict, source = self._verdict_with_retry(item)
            except Exception as exc:
                # one decision failing must never take the batch down: the
                # request answers with a structured error and the drain
                # keeps emitting the remaining verdicts
                sp.set(source="error")
                self.metrics.count("errors")
                self.metrics.count("decision_failures")
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                self.metrics.observe_latency_ms(elapsed_ms)
                return item.seq, error_response(
                    item.request.id, f"decision failed: {exc}"
                )
            sp.set(source=source)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.observe_latency_ms(elapsed_ms)
        self.metrics.count(f"verdicts_{source}")
        return item.seq, verdict_response(item.request.id, verdict, source, elapsed_ms)

    def _verdict_with_retry(self, item: _Item) -> tuple[dict, str]:
        """Run the decision, retrying transient infrastructure failures
        (lost pools, injected faults) with capped exponential backoff."""
        attempt = 0
        while True:
            try:
                return self._verdict_for(item)
            except _TRANSIENT_ERRORS:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                self.metrics.count("decision_retries")
                time.sleep(min(1.0, self.retry_backoff_s * (2 ** (attempt - 1))))

    def _verdict_for(self, item: _Item) -> tuple[dict, str]:
        cached = self._results.get(item.key)
        if cached is not None:
            if self._audit_gate(item, cached, "dedup"):
                self.metrics.count("dedup_collapses")
                return cached, "dedup"
            # a memo entry that no longer proves itself is evicted and the
            # request falls through to the layers below
            self._results.discard(item.key)
        if self.cache is not None:
            stored = self.cache.get(item.key)
            if stored is not None:
                if self._audit_gate(item, stored, "cache"):
                    self._results.put(item.key, stored)
                    return stored, "cache"
                self.cache.quarantine_entry(item.key, "audit.countermodel")
        semantic = self._semantic_lookup(item)
        if semantic is not None:
            # no serve-time gate here: a replay hit *is* a countermodel
            # re-verification, and transitive hits are proofs over premises
            # the lattice's trust gate already re-verified
            self.metrics.count("semantic_hits")
            return semantic, "semantic"
        faults.maybe_fault("scheduler.dispatch")
        if item.session is not None:
            if item.session.decisions > 0:
                self.metrics.count("kernel_reuse")
            item.session.decisions += 1
        options = item.options
        if item.timeout_ms is not None:
            # armed at execution time, never part of the decision identity
            options = replace(options, deadline=Deadline.after_ms(item.timeout_ms))
        result = is_contained(
            item.lhs,
            item.rhs,
            item.session.tbox if item.session is not None else None,
            method=item.request.method,
            options=options,
        )
        self.metrics.count("decisions_executed")
        verdict = verdict_to_dict(result)
        if result.deadline_expired:
            # wall-clock-cut verdicts are nondeterministic: answer the
            # caller but keep them out of the dedup memo and the journal
            # (and out of the auditor's reach — there is nothing to prove)
            self.metrics.count("timeouts")
            return verdict, "computed"
        verdict = self._audit_computed(item, verdict)
        self._results.put(item.key, verdict)
        if self.cache is not None:
            self.cache.put(item.key, verdict)
        self._semantic_insert(item, verdict)
        return verdict, "computed"

    # ------------------------------------------------------------- #
    # integrity audit

    def _audit_gate(self, item: _Item, verdict: dict, source: str) -> bool:
        """Witness check for a verdict about to be served from a cache
        layer; True when safe (or no auditor is attached)."""
        if self.auditor is None:
            return True
        tbox = item.session.tbox if item.session is not None else None
        return self.auditor.check_false(
            verdict, item.lhs, item.rhs, tbox, source=source
        )

    def _audit_computed(self, item: _Item, verdict: dict) -> dict:
        """Audit a freshly computed deterministic verdict.

        A failed witness check means the engine itself produced a bad
        countermodel (or memory corrupted it): re-decide once on the
        reference configuration and serve that — or fail the request if
        even the reference answer cannot prove itself.  Complete verdicts
        that pass are additionally A/B-sampled onto the mirror backend."""
        if self.auditor is None:
            return verdict
        tbox = item.session.tbox if item.session is not None else None
        if not self.auditor.check_false(
            verdict, item.lhs, item.rhs, tbox, source="computed"
        ):
            return self._reference_verdict(item, tbox)
        if verdict.get("complete") and self.auditor.should_ab_sample():
            mirror = self.auditor.ab_verdict(
                item.lhs, item.rhs, tbox, item.request.method, item.options
            )
            if mirror is not None and mirror != verdict:
                REGISTRY.inc("audit.ab.mismatch")
                self.metrics.count("audit_ab_mismatches")
                return self._reference_verdict(item, tbox)
        return verdict

    def _reference_verdict(self, item: _Item, tbox) -> dict:
        """Last-resort sound fallback: serial bitset kernel, every cache
        and inference layer bypassed, no deadline — then audited again."""
        self.metrics.count("audit_reference_redecides")
        REGISTRY.inc("audit.reference.redecides")
        options = replace(
            item.options,
            backend="bitset",
            workers=1,
            use_cache=False,
            semantic_cache=False,
            deadline=None,
        )
        result = is_contained(
            item.lhs, item.rhs, tbox, method=item.request.method, options=options
        )
        verdict = verdict_to_dict(result)
        if not self.auditor.check_false(
            verdict, item.lhs, item.rhs, tbox, source="reference"
        ):
            raise AuditFailure(
                "audit failed: countermodel rejected even on the reference "
                "backend (serial bitset, caches bypassed)"
            )
        return verdict

    # ------------------------------------------------------------- #
    # semantic layer

    def _lattice_for(self, item: _Item):
        """The lattice for this request, or ``None`` when the semantic
        layer doesn't apply (disabled, opted out, or schema-less)."""
        if not self.semantic_cache or item.session is None:
            return None
        if item.options is not None and not item.options.semantic_cache:
            return None
        return item.session.semantic_lattice()

    def _semantic_lookup(self, item: _Item) -> Optional[dict]:
        lattice = self._lattice_for(item)
        if lattice is None:
            return None
        lhs_key, group_key = decision_key_parts(item.key)
        self._semantic_hydrate(lattice, group_key)
        hit = lattice.lookup(
            group_key, item.lhs, lhs_key, rhs=item.rhs, tbox=item.session.tbox
        )
        self._quarantine_rejected(lattice)
        if hit is None:
            return None
        # both rules are proofs, so the derived verdict is certain; the
        # method names the rule so responses are auditable end to end
        return {
            "format": FORMAT_VERSION,
            "contained": hit.contained,
            "complete": True,
            "method": f"semantic.{hit.kind}",
            "seeds_tried": 0,
            "supported_by_theory": supported_combination(
                item.lhs, item.rhs, item.session.tbox
            ),
            "countermodel": hit.countermodel,
        }

    def _quarantine_rejected(self, lattice) -> None:
        """Evict the journal lines behind records the lattice's trust gate
        rejected during the last lookup, so disk heals with memory."""
        if self.cache is None:
            return
        for group_key, lhs_text in lattice.take_rejected():
            digest = semantic_group_digest(group_key, self.cache.fingerprint)
            self.cache.quarantine_semantic(digest, lhs_text, "audit.countermodel")

    def _semantic_hydrate(self, lattice, group_key: tuple) -> None:
        """Load a persisted premise group into the lattice on first touch.

        Hydrated records are marked untrusted: the lattice re-verifies
        their countermodels (T-model, avoids Q) before the first replay is
        allowed to answer anything."""
        if self.cache is None:
            return
        digest = semantic_group_digest(group_key, self.cache.fingerprint)
        if not lattice.needs_hydration(digest):
            return
        lattice.mark_hydrated(digest)
        for lhs_text, verdict in self.cache.semantic_entries(digest):
            try:
                premise = parse_query(lhs_text)
            except Exception:
                self.metrics.count("semantic_hydrate_errors")
                continue
            lattice.insert(
                group_key, premise, query_key(premise), verdict, trusted=False
            )

    def _semantic_insert(self, item: _Item, verdict: dict) -> None:
        """Feed a freshly computed deterministic verdict to the lattice as
        a premise, and persist it to the semantic journal."""
        lattice = self._lattice_for(item)
        if lattice is None:
            return
        lhs_key, group_key = decision_key_parts(item.key)
        if not lattice.insert(group_key, item.lhs, lhs_key, verdict):
            return
        if self.cache is not None:
            digest = semantic_group_digest(group_key, self.cache.fingerprint)
            self.cache.put_semantic(digest, query_to_text(item.lhs), verdict)
