"""The containment server: JSONL over a pipe or a local Unix socket.

Two transports, one request loop:

* **pipe mode** (:meth:`ContainmentServer.serve_pipe`) — read requests from
  an input stream, write responses to an output stream, until end of input.
  ``repro serve`` with no flags and ``repro batch`` both run this loop
  (batch feeds it a file instead of stdin).
* **socket mode** (:meth:`ContainmentServer.serve_socket`) — bind a local
  ``AF_UNIX`` stream socket and serve connections *sequentially*: each
  connection speaks the same JSONL protocol, a client's half-close acts as
  its ``flush``, and sessions / caches / metrics persist across
  connections.  Sequential accept keeps execution order deterministic; the
  amortization lives in the shared state, not in connection concurrency.

Verdict emission is buffered: ``decide`` requests queue in the scheduler
until a ``flush`` / ``shutdown`` / end-of-input, so the scheduler can
dedup and priority-order a whole batch before any search runs.  Control
requests (``stats``, ``ping``, ``schema``) answer immediately.

While serving, the ``kernel.parallel`` shared pool is enabled so decisions
that request workers reuse one warm process pool instead of spawning one
per decision; it is torn down when the serve loop exits.
"""

from __future__ import annotations

import socket
import stat
from pathlib import Path
from typing import IO, Iterable, Optional, Union

from repro.kernel.parallel import set_pool_reuse
from repro.obs import REGISTRY, PhaseAggregator, active_collector, install, uninstall
from repro.resilience.audit import JournalScrubber, VerdictAuditor
from repro.service.cache import DecisionCache
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    ProtocolError,
    encode_response,
    error_response,
    parse_request,
)
from repro.service.scheduler import DecisionScheduler
from repro.service.sessions import SessionManager


class StreamState:
    """Per-connection request numbering.

    One instance per stream/connection; ``seq`` feeds default request ids
    and intra-stream emission order.  Kept deliberately tiny — the gateway
    allocates one per shard feed and one per client connection."""

    __slots__ = ("seq",)

    def __init__(self) -> None:
        self.seq = 0

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class ContainmentServer:
    """One scheduler + session table + cache behind a wire transport."""

    def __init__(
        self,
        scheduler: Optional[DecisionScheduler] = None,
        cache_dir: Union[None, str, Path] = None,
        use_cache: bool = True,
        workers: Union[int, str, None] = None,
        pool_reuse: bool = True,
        default_timeout_ms: Optional[int] = None,
        backend: Optional[str] = None,
        semantic_cache: bool = True,
        audit: bool = True,
        ab_sample_every: int = 64,
        scrub_interval_s: Optional[float] = None,
    ) -> None:
        if scheduler is not None:
            self.scheduler = scheduler
        else:
            metrics = ServiceMetrics()
            cache = DecisionCache(cache_dir, metrics) if use_cache else None
            auditor = (
                VerdictAuditor(metrics, ab_sample_every=ab_sample_every)
                if audit
                else None
            )
            self.scheduler = DecisionScheduler(
                SessionManager(metrics, backend=backend or "auto"),
                cache, metrics, workers=workers,
                default_timeout_ms=default_timeout_ms,
                backend=backend,
                semantic_cache=semantic_cache,
                auditor=auditor,
            )
        self.metrics = self.scheduler.metrics
        self.sessions = self.scheduler.sessions
        self.pool_reuse = pool_reuse
        self.scrubber: Optional[JournalScrubber] = None
        if scrub_interval_s is not None and self.scheduler.cache is not None:
            self.scrubber = JournalScrubber(
                self.scheduler.cache, self.metrics, interval_s=scrub_interval_s
            )
        self._default_stream = StreamState()

    # ------------------------------------------------------------- #
    # request handling (transport-independent)

    def new_stream(self) -> "StreamState":
        """A fresh per-connection request counter.

        Each stream (pipe conversation, socket connection, gateway shard
        feed) numbers its requests independently, so two concurrent clients
        get stable default ids (``req-1``, ``req-2``, ...) and deterministic
        intra-stream emission order without sharing a mutable counter."""
        return StreamState()

    def handle_line(
        self, line: str, stream: Optional["StreamState"] = None
    ) -> tuple[list[dict], bool]:
        """Process one request line under ``stream``'s sequence counter
        (a server-level default stream when none is given — the historical
        single-client behaviour).

        Returns ``(responses to emit now, stop serving?)``; decide requests
        buffer in the scheduler and emit nothing until a flush.
        """
        state = stream if stream is not None else self._default_stream
        line = line.strip()
        if not line:
            return [], False
        seq = state.next_seq()
        self.metrics.count("requests")
        try:
            request = parse_request(line, seq)
        except ProtocolError as exc:
            self.metrics.count("errors")
            return [error_response(None, str(exc))], False
        try:
            return self._dispatch(request)
        except Exception as exc:
            # no request line, however malformed its payload, may kill the
            # serve loop — answer with a structured error and keep going
            self.metrics.count("errors")
            return [error_response(request.id, f"internal error: {exc}")], False

    def _dispatch(self, request) -> tuple[list[dict], bool]:
        self.metrics.count(f"requests_{request.type}")
        if request.type == "decide":
            error = self.scheduler.submit(request)
            return ([error] if error is not None else []), False
        if request.type == "schema":
            try:
                self.sessions.register(request.ref, request.tbox)
            except Exception as exc:
                self.metrics.count("errors")
                return [error_response(request.id, f"bad schema: {exc}")], False
            return [{"type": "ack", "id": request.id, "ref": request.ref}], False
        if request.type == "stats":
            return [{"type": "stats", "id": request.id, "stats": self.stats()}], False
        if request.type == "ping":
            return [{"type": "pong", "id": request.id}], False
        if request.type == "flush":
            return self.scheduler.drain(), False
        # shutdown: drain what's buffered, say goodbye, stop
        responses = self.scheduler.drain()
        responses.append({"type": "bye", "id": request.id})
        return responses, True

    def stats(self) -> dict:
        payload = self.metrics.snapshot()
        payload["sessions"] = self.sessions.snapshot()
        payload["pending"] = self.scheduler.pending()
        if self.scheduler.cache is not None:
            payload["cache"] = self.scheduler.cache.stats()
        semantic = self.sessions.semantic_snapshot()
        if semantic:
            payload["semantic"] = semantic
        audit = REGISTRY.snapshot_prefixed("audit.")
        if self.scheduler.auditor is not None or audit:
            payload["audit"] = {
                "enabled": self.scheduler.auditor is not None,
                "counters": audit,
            }
            if self.scheduler.auditor is not None:
                payload["audit"]["seconds"] = round(
                    self.scheduler.auditor.seconds, 6
                )
            if self.scrubber is not None:
                payload["audit"]["scrub_passes"] = self.scrubber.passes
        return payload

    # ------------------------------------------------------------- #
    # transports

    def _run_stream(self, lines: Iterable[str], out_stream: IO[str]) -> bool:
        """Drive the loop over ``lines``; returns True on explicit shutdown.
        End of input drains the scheduler (implicit flush)."""
        stream = self.new_stream()

        def emit(responses: list[dict]) -> None:
            for response in responses:
                out_stream.write(encode_response(response) + "\n")
            out_stream.flush()

        try:
            for line in lines:
                responses, stop = self.handle_line(line, stream)
                emit(responses)
                if stop:
                    return True
        except KeyboardInterrupt:
            # graceful shutdown: drain buffered work, emit, then stop
            self.metrics.count("interrupted")
            emit(self.scheduler.drain())
            return True
        emit(self.scheduler.drain())
        return False

    def serve_pipe(self, in_stream: IO[str], out_stream: IO[str]) -> None:
        """Serve one JSONL conversation from stream to stream."""
        set_pool_reuse(self.pool_reuse)
        installed = self._install_aggregator()
        if self.scrubber is not None:
            self.scrubber.start()
        try:
            self._run_stream(in_stream, out_stream)
        finally:
            if self.scrubber is not None:
                self.scrubber.stop()
            if installed:
                uninstall()
            set_pool_reuse(False)

    @staticmethod
    def _install_aggregator() -> bool:
        """Aggregate per-phase span timings for the serve loop's lifetime
        (bounded memory: counts + totals only, surfaced via ``stats``).
        An already-installed collector — e.g. a benchmark's tracer — wins."""
        if active_collector() is not None:
            return False
        install(PhaseAggregator())
        return True

    def _remove_stale_socket(self, socket_path: Path) -> None:
        """Unlink a socket file a previously crashed server left behind.

        Only actual sockets are removed: binding over a regular file or a
        directory almost certainly means a mistyped path, and silently
        deleting user data to grab it would be far worse than failing.

        The lstat → unlink window races against any other server starting
        on the same path: whoever unlinks second sees ``FileNotFoundError``,
        which counts as success — the stale file is gone either way."""
        try:
            mode = socket_path.lstat().st_mode
        except FileNotFoundError:
            return
        if not stat.S_ISSOCK(mode):
            raise OSError(
                f"refusing to remove {socket_path}: exists and is not a socket"
            )
        try:
            socket_path.unlink()
        except FileNotFoundError:
            return
        self.metrics.count("stale_socket_removed")

    def serve_socket(self, path: Union[str, Path]) -> None:
        """Serve connections on a local Unix socket until a client sends
        ``shutdown``.  Connections are handled one at a time; state (schema
        sessions, persistent cache, metrics) is shared across them."""
        socket_path = Path(path)
        self._remove_stale_socket(socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        set_pool_reuse(self.pool_reuse)
        installed = self._install_aggregator()
        if self.scrubber is not None:
            self.scrubber.start()
        try:
            listener.bind(str(socket_path))
            listener.listen(8)
            stop = False
            while not stop:
                try:
                    conn, _ = listener.accept()
                except KeyboardInterrupt:
                    self.metrics.count("interrupted")
                    break
                with conn:
                    reader = conn.makefile("r", encoding="utf-8")
                    writer = conn.makefile("w", encoding="utf-8")
                    try:
                        stop = self._run_stream(reader, writer)
                    except (BrokenPipeError, ConnectionResetError):
                        self.metrics.count("connections_dropped")
                    finally:
                        self.metrics.count("connections")
                        # the makefile wrappers hold the socket fd open past
                        # conn.close(); close them or the client never sees EOF
                        for stream in (writer, reader):
                            try:
                                stream.close()
                            except OSError:
                                pass
        finally:
            if self.scrubber is not None:
                self.scrubber.stop()
            if installed:
                uninstall()
            set_pool_reuse(False)
            listener.close()
            if socket_path.exists():
                socket_path.unlink()
