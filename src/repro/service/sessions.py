"""Schema sessions: normalize + warm each distinct schema exactly once.

Every containment decision against a TBox pays a fixed prelude — parse,
normalize (:func:`repro.dl.normalize.normalize`), compile the clausal CIs
onto the bitset type kernel — before any search runs.  A *schema session*
performs that prelude once per distinct schema and keeps the
:class:`~repro.dl.normalize.NormalizedTBox` alive for the server's
lifetime, so every later request against the same schema starts from a
warm kernel and warm per-``content_key`` memos (compiled clauses, Tp
entailment, factorizations).

Sessions are keyed by the schema's *raw* CI text (cheap to compute from a
wire payload), not by ``content_key`` (which requires normalizing first) —
re-normalization is exactly the cost being amortized.  Two textually
different schemas that normalize to the same ``content_key`` simply
converge on the same downstream memo entries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Union

from repro.dl.normalize import NormalizedTBox, normalize
from repro.dl.tbox import TBox
from repro.io import tbox_from_dict
from repro.kernel.bitset import compiled_clauses_for
from repro.service.metrics import ServiceMetrics

WARM_MAX_TABLE_ROWS = 4096
"""Largest candidate table (2^|concept names|) :meth:`SchemaSession.warm`
will prebuild.  Matches the decision procedures' default ``max_types``
guard: a wider signature raises ``ProcedureInfeasible`` at decide time, so
a prebuilt table would never be consulted — while materializing it costs
up to 2^n time and memory during session registration."""


@dataclass
class SchemaSession:
    """One warmed schema: the normalized TBox plus reuse counters."""

    key: tuple
    tbox: NormalizedTBox
    name: str = ""
    decisions: int = 0
    """Decide requests dispatched under this session (reuse = decisions - 1)."""
    semantic: Optional[object] = None
    """The session's containment lattice
    (:class:`repro.cache.semantic.SemanticLattice`), built lazily by
    :meth:`semantic_lattice` the first time the scheduler consults it."""

    def semantic_lattice(self):
        """The per-session semantic lattice, created on first use."""
        if self.semantic is None:
            from repro.cache.semantic import SemanticLattice

            self.semantic = SemanticLattice()
        return self.semantic

    def warm(self, backend: str = "auto") -> None:
        """Build the shared bitset-kernel compilation for the schema's full
        concept signature (a no-op when already cached by ``content_key``),
        plus the consistent-type bit matrix when the backend resolves to
        the vec kernel at this signature size.

        The prebuild is skipped entirely above :data:`WARM_MAX_TABLE_ROWS`
        candidate rows — the same budget the decision procedures enforce —
        so registering a wide-signature schema stays O(normalize) instead
        of enumerating 2^n candidates for a table no decision could use.

        ``resolve_backend`` records any auto-downgrade it takes here under
        ``kernel.backend.fallback.<reason>`` (``numpy_missing``,
        ``table_too_large``), so service metrics show why a warmed session
        will run on the bitset kernel."""
        names = self.tbox.concept_names()
        if not names:
            return
        compiled_clauses_for(self.tbox, names)
        table_size = 1 << len(names)
        if table_size > WARM_MAX_TABLE_ROWS:
            return
        from repro.kernel.vec import VecUnavailable, resolve_backend, vec_table_for

        try:
            if resolve_backend(backend, table_size) == "vec":
                vec_table_for(self.tbox, names)
        except (VecUnavailable, MemoryError):
            pass  # the prebuild is an optimization only; decisions fall back

    @property
    def content_key(self) -> tuple:
        return self.tbox.content_key()


def schema_session_key(tbox: TBox) -> tuple:
    """A cheap, normalization-free identity for a raw schema."""
    return tuple(sorted(str(ci) for ci in tbox))


class SessionManager:
    """The server's session table: raw schema key → :class:`SchemaSession`.

    Also holds the ``schema_ref`` registry populated by ``schema`` wire
    requests, so a batch can upload a TBox once and reference it by name.
    """

    def __init__(
        self,
        metrics: Optional[ServiceMetrics] = None,
        backend: str = "auto",
    ) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[tuple, SchemaSession] = {}
        self._refs: dict[str, SchemaSession] = {}
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.backend = backend
        """Kernel backend hint used when warming new sessions."""

    def __len__(self) -> int:
        return len(self._sessions)

    def register(self, ref: str, tbox_data: dict) -> SchemaSession:
        """Register a wire schema under ``ref`` (idempotent per content)."""
        session = self.session_for(tbox_from_dict(tbox_data))
        with self._lock:
            self._refs[ref] = session
        return session

    def by_ref(self, ref: str) -> Optional[SchemaSession]:
        with self._lock:
            return self._refs.get(ref)

    def session_for(
        self, tbox: Union[None, dict, TBox, NormalizedTBox]
    ) -> Optional[SchemaSession]:
        """The (possibly new) session for a schema; ``None`` for schema-less
        decisions.  New sessions are normalized and warmed on creation."""
        if tbox is None:
            return None
        if isinstance(tbox, dict):
            tbox = tbox_from_dict(tbox)
        if isinstance(tbox, NormalizedTBox):
            # already normalized by the caller: key by content, skip the
            # normalization this manager would otherwise amortize
            key = ("normalized", tbox.content_key())
            raw_name = ""
            normalized = tbox
        else:
            key = schema_session_key(tbox)
            raw_name = tbox.name
            normalized = None
        with self._lock:
            session = self._sessions.get(key)
        if session is not None:
            self.metrics.count("sessions_reused")
            return session
        if normalized is None:
            normalized = normalize(tbox)
        session = SchemaSession(key=key, tbox=normalized, name=raw_name)
        session.warm(self.backend)
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
            self._sessions[key] = session
        self.metrics.count("sessions_created")
        return session

    def snapshot(self) -> list[dict]:
        """Per-session counters for the metrics surface."""
        with self._lock:
            sessions = list(self._sessions.values())
        return [
            {
                "name": s.name,
                "decisions": s.decisions,
                "concepts": len(s.tbox.concept_names()),
                "fragment": s.tbox.fragment(),
            }
            for s in sessions
        ]

    def semantic_snapshot(self) -> list[dict]:
        """Per-session semantic-lattice stats (sessions with a live
        lattice only)."""
        with self._lock:
            sessions = list(self._sessions.values())
        return [
            {"name": s.name, **s.semantic.stats()}
            for s in sessions
            if s.semantic is not None
        ]


def reset_process_caches() -> None:
    """Drop every process-wide memo the service warms.

    This is the programmatic equivalent of a cold CLI start: the decision
    memo, Tp cache, factorization cache, compiled-matcher caches, and the
    bitset compilation cache are all cleared.  Benchmarks use it to measure
    cold-vs-warm honestly; servers never call it.
    """
    from repro.core import containment, reduction
    from repro.kernel import bitset, vec
    from repro.queries import compiled, factorization

    containment._DECISION_MEMO.clear()
    reduction._TP_MEMO.clear()
    factorization._FACTORIZATION_MEMO.clear()
    compiled._AUTOMATON_MEMO.clear()
    compiled._DISJUNCT_MEMO.clear()
    compiled._QUERY_MEMO.clear()
    compiled._FINGERPRINT_MEMO.clear()
    bitset._COMPILED_CACHE.clear()
    vec._TABLE_CACHE.clear()
