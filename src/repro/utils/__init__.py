"""Small shared utilities used across the repro packages."""

from repro.utils.misc import fresh_name_factory, powerset, stable_unique

__all__ = ["fresh_name_factory", "powerset", "stable_unique"]
