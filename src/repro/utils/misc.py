"""Generic helpers: name generation, set utilities, iteration helpers."""

from __future__ import annotations

from itertools import chain, combinations
from typing import Callable, Hashable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)


def fresh_name_factory(prefix: str, taken: Iterable[str] = ()) -> Callable[[], str]:
    """Return a callable producing names ``prefix0, prefix1, ...`` that avoid
    every name in ``taken``.

    The returned factory is stateful: each call yields a new unused name.
    """
    used = set(taken)
    counter = 0

    def fresh() -> str:
        nonlocal counter
        while True:
            candidate = f"{prefix}{counter}"
            counter += 1
            if candidate not in used:
                used.add(candidate)
                return candidate

    return fresh


def powerset(items: Sequence[T]) -> Iterator[tuple[T, ...]]:
    """Yield all subsets of ``items`` as tuples, smallest first."""
    return chain.from_iterable(combinations(items, k) for k in range(len(items) + 1))


def stable_unique(items: Iterable[T]) -> list[T]:
    """Deduplicate ``items`` preserving first-occurrence order."""
    seen: set[T] = set()
    result: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result
