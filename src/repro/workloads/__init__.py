"""Benchmark workload generators (schemas, queries, query-log mixes)."""

from repro.workloads.er_schemas import ERProfile, random_er_schema, random_er_tbox
from repro.workloads.generators import (
    QueryLogProfile,
    chain_schema,
    log_like_queries,
    random_simple_query,
    star_schema,
)

__all__ = [
    "ERProfile",
    "QueryLogProfile",
    "random_er_schema",
    "random_er_tbox",
    "chain_schema",
    "log_like_queries",
    "random_simple_query",
    "star_schema",
]
