"""Random ER-style schema generation (conceptual-model workloads).

The paper positions ALCQI as capturing ER models and UML class diagrams;
this generator produces random but *coherent* conceptual models in that
style: entity hierarchies with disjoint siblings, typed relationships, and
participation/cardinality constraints — the raw material for schema-size
scaling experiments (E15).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.dl.pg_schema import PGSchema
from repro.dl.tbox import TBox


@dataclass
class ERProfile:
    """Shape parameters for a random conceptual model."""

    entities: int = 4
    subtypes_per_entity: int = 1
    relationships: int = 3
    participation_probability: float = 0.5
    cardinality_probability: float = 0.3
    max_cardinality: int = 3
    disjoint_siblings: bool = True


def random_er_schema(profile: Optional[ERProfile] = None, seed: int = 0) -> PGSchema:
    """A random ER-flavoured PG-Schema, deterministic per seed.

    Entities E0..E_{n-1}, each with optional subtypes E_i_S_j (disjoint when
    configured); relationships R_k typed between random entities, with
    participation/cardinality sprinkled per the profile.  The construction
    never mixes inverses and counting, so the result stays within ALCQ —
    the fragment the paper decides.
    """
    profile = profile or ERProfile()
    rng = random.Random(seed)
    schema = PGSchema(name=f"er_{seed}")

    entities = [f"E{i}" for i in range(profile.entities)]
    for entity in entities:
        schema.node_type(entity)
    # hierarchies
    for i, entity in enumerate(entities):
        subtypes = [f"{entity}S{j}" for j in range(profile.subtypes_per_entity)]
        for subtype in subtypes:
            schema.subtype(subtype, entity)
        if profile.disjoint_siblings and len(subtypes) > 1:
            schema.disjoint(*subtypes)
    # top-level entities pairwise disjoint
    if profile.disjoint_siblings and len(entities) > 1:
        schema.disjoint(*entities)
    # relationships
    for k in range(profile.relationships):
        role = f"rel{k}"
        source = rng.choice(entities)
        target = rng.choice(entities)
        schema.edge_type(role, source, target)
        if rng.random() < profile.participation_probability:
            schema.participation(source, role, target)
        if rng.random() < profile.cardinality_probability:
            schema.cardinality(
                source, role, target, at_most=rng.randint(1, profile.max_cardinality)
            )
    return schema


def random_er_tbox(profile: Optional[ERProfile] = None, seed: int = 0) -> TBox:
    return random_er_schema(profile, seed).to_tbox()
