"""Seeded workload generators for the benchmark suite.

The query-log studies the paper cites ([9, 10]: Bonifati et al.'s analyses
of real SPARQL logs) found that the vast majority of property paths are
*simple* — single edges or transitive closures of unions — which is exactly
the class the Section 6 results target.  :func:`log_like_queries` generates
a mix with that skew.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.dl.tbox import TBox
from repro.queries.crpq import CRPQ
from repro.queries.parser import parse_crpq
from repro.queries.ucrpq import UCRPQ


def chain_schema(depth: int, role: str = "r", participation: bool = True) -> TBox:
    """L0 ⊑ ∃r.L1, L1 ⊑ ∃r.L2, … — a participation chain of given depth
    (or the ∀-typed variant when ``participation`` is off)."""
    quantifier = "exists" if participation else "forall"
    cis = [(f"L{i}", f"{quantifier} {role}.L{i+1}") for i in range(depth)]
    return TBox.of(cis, name=f"chain{depth}")


def star_schema(fan_out: int, role_prefix: str = "r") -> TBox:
    """Hub ⊑ ∃r_i.Spoke_i for i < fan_out — an ER-style star."""
    cis = [(f"Hub", f"exists {role_prefix}{i}.Spoke{i}") for i in range(fan_out)]
    return TBox.of(cis, name=f"star{fan_out}")


@dataclass
class QueryLogProfile:
    """The shape mix of a synthetic query log.

    Defaults follow the headline finding of the query-log studies: most
    path queries are single edges or plain transitive closures.
    """

    single_edge: float = 0.55
    transitive: float = 0.30
    concatenation: float = 0.10
    two_way: float = 0.05


def random_simple_query(
    rng: random.Random, labels: Sequence[str], roles: Sequence[str], n_atoms: int = 2
) -> CRPQ:
    """A random connected *simple* C2RPQ."""
    variables = [f"v{i}" for i in range(n_atoms + 1)]
    parts = [f"{rng.choice(labels)}({variables[0]})"]
    for i in range(n_atoms):
        role = rng.choice(roles)
        shape = rng.random()
        if shape < 0.5:
            atom = f"{role}({variables[i]},{variables[i+1]})"
        elif shape < 0.75:
            atom = f"({role})*({variables[i]},{variables[i+1]})"
        else:
            atom = f"({role}|{role}-)*({variables[i]},{variables[i+1]})"
        parts.append(atom)
    return parse_crpq(", ".join(parts))


def log_like_queries(
    count: int,
    labels: Sequence[str],
    roles: Sequence[str],
    profile: QueryLogProfile | None = None,
    seed: int = 0,
) -> Iterator[tuple[str, UCRPQ]]:
    """Yield (shape, query) pairs mimicking a real query log's mix."""
    profile = profile or QueryLogProfile()
    rng = random.Random(seed)
    shapes = [
        ("single_edge", profile.single_edge),
        ("transitive", profile.transitive),
        ("concatenation", profile.concatenation),
        ("two_way", profile.two_way),
    ]
    for _ in range(count):
        pick = rng.random()
        total = 0.0
        shape = shapes[-1][0]
        for name, weight in shapes:
            total += weight
            if pick < total:
                shape = name
                break
        label = rng.choice(labels)
        target = rng.choice(labels)
        r1, r2 = rng.choice(roles), rng.choice(roles)
        if shape == "single_edge":
            text = f"{label}(x), {r1}(x,y)"
        elif shape == "transitive":
            text = f"{label}(x), ({r1})*(x,y), {target}(y)"
        elif shape == "concatenation":
            text = f"{label}(x), ({r1}.{r2})(x,y)"
        else:  # two_way
            text = f"{label}(x), ({r1}|{r2}-)*(x,y)"
        yield shape, UCRPQ.single(parse_crpq(text))
