"""DFA minimization: sizes, canonical keys, language equality."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.minimize import languages_equal, minimal_dfa
from repro.automata.nfa import NFA
from repro.graphs.labels import Role

R, S = Role("r"), Role("s")

EQUIVALENT_PAIRS = [
    ("r.r*", "r+"),
    ("(r|s)*", "(r*.s*)*"),
    ("r?", "(r|<eps>)"),
    ("(r.s)*.r", "r.(s.r)*"),
]

INEQUIVALENT_PAIRS = [
    ("r*", "r+"),
    ("r.s", "s.r"),
    ("(r|s)", "(r|s)+"),
]


class TestMinimization:
    def test_minimal_sizes(self):
        # L(r) over {r}: 3 states (start, accept, sink)
        assert minimal_dfa("r").n_states == 3
        # L(r*) over {r}: a single accepting state
        assert minimal_dfa("r*").n_states == 1
        # L(r+): start + accept
        assert minimal_dfa("r+").n_states == 2

    def test_minimized_accepts_same(self):
        for text in ("r.s*", "(r|s)+", "(r.s)*"):
            nfa = NFA.from_regex(text)
            dfa = minimal_dfa(text)
            for word in ([], [R], [S], [R, S], [S, R], [R, S, R], [R, R]):
                assert dfa.accepts(word) == nfa.accepts(word), (text, word)

    def test_equivalent_pairs(self):
        for left, right in EQUIVALENT_PAIRS:
            assert languages_equal(left, right), (left, right)

    def test_inequivalent_pairs(self):
        for left, right in INEQUIVALENT_PAIRS:
            assert not languages_equal(left, right), (left, right)

    def test_canonical_keys_match_for_syntactic_variants(self):
        sigma = [R, S]
        a = minimal_dfa("r.r*", sigma).canonical_key()
        b = minimal_dfa("r+", sigma).canonical_key()
        assert a == b

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["r", "r*", "r+", "r.s", "(r|s)", "(r|s)*", "(r.s)*", "r?"]),
        st.sampled_from(["r", "r*", "r+", "r.s", "(r|s)", "(r|s)*", "(r.s)*", "r?"]),
        st.lists(st.sampled_from([R, S]), max_size=5),
    )
    def test_equality_consistent_with_membership(self, left, right, word):
        if languages_equal(left, right):
            assert NFA.from_regex(left).accepts(word) == NFA.from_regex(right).accepts(word)

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(["r", "r*", "r+", "r.s", "(r|s)*", "(r.s)*"]),
        st.sampled_from(["r", "r*", "r+", "r.s", "(r|s)*", "(r.s)*"]),
    )
    def test_equality_agrees_with_double_inclusion(self, left, right):
        a, b = NFA.from_regex(left), NFA.from_regex(right)
        assert languages_equal(left, right) == (a.includes(b) and b.includes(a))
