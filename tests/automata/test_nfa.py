"""NFA operations: membership, emptiness, product, determinization, inclusion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.nfa import NFA
from repro.automata.regex import matches_word, parse_regex
from repro.graphs.labels import Role

R, S = Role("r"), Role("s")


class TestMembership:
    def test_accepts(self):
        a = NFA.from_regex("r.s*")
        assert a.accepts([R])
        assert a.accepts([R, S, S])
        assert not a.accepts([S])
        assert not a.accepts([])

    def test_epsilon(self):
        assert NFA.from_regex("r*").accepts([])
        assert not NFA.from_regex("r+").accepts([])


class TestEmptiness:
    def test_nonempty(self):
        assert not NFA.from_regex("r").is_empty()
        assert not NFA.from_regex("r*").is_empty()

    def test_empty_intersection(self):
        assert NFA.from_regex("r").intersect(NFA.from_regex("s")).is_empty()

    def test_nonempty_intersection(self):
        product = NFA.from_regex("r.s*").intersect(NFA.from_regex("r*.s"))
        assert not product.is_empty()
        assert product.accepts([R, S])
        assert not product.accepts([R])


class TestDeterminization:
    def test_dfa_agrees(self):
        nfa = NFA.from_regex("(r|s)*.r")
        dfa = nfa.determinize()
        for word in ([R], [S, R], [R, S], [], [S, S, R]):
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_dfa_total(self):
        dfa = NFA.from_regex("r").determinize([R, S])
        assert not dfa.accepts([S])


class TestInclusion:
    def test_subset_language(self):
        small = NFA.from_regex("r.r")
        big = NFA.from_regex("r*")
        assert big.includes(small)
        assert not small.includes(big)

    def test_equivalent(self):
        a = NFA.from_regex("r.r*")
        b = NFA.from_regex("r+")
        assert a.equivalent(b)

    def test_incomparable(self):
        a = NFA.from_regex("r")
        b = NFA.from_regex("s")
        assert not a.includes(b)
        assert not b.includes(a)

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["r", "r*", "r.s", "(r|s)*", "r+", "s.r*", "(r.s)*"]),
        st.sampled_from(["r", "r*", "r.s", "(r|s)*", "r+", "s.r*", "(r.s)*"]),
        st.lists(st.sampled_from([R, S]), max_size=5),
    )
    def test_inclusion_sound_on_samples(self, lhs, rhs, word):
        a, b = NFA.from_regex(lhs), NFA.from_regex(rhs)
        if b.includes(a) and a.accepts(word):
            assert b.accepts(word)
