"""Graph × automaton products: RPQ relations, targets, witness paths."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.product import rpq_holds, rpq_relation, rpq_targets, witness_path
from repro.automata.semiautomaton import compile_regex
from repro.graphs.generators import cycle_graph, path_graph, random_graph
from repro.graphs.graph import Graph


class TestRelation:
    def test_path_star(self):
        g = path_graph(3, "r")
        rel = rpq_relation(g, compile_regex("r*"))
        assert (0, 3) in rel and (0, 0) in rel and (3, 0) not in rel
        assert len(rel) == 10  # all (i, j) with i <= j

    def test_inverse_roles(self):
        g = path_graph(2, "r")
        assert rpq_holds(g, compile_regex("r-"), 1, 0)
        assert rpq_holds(g, compile_regex("r.r-"), 0, 0)
        assert not rpq_holds(g, compile_regex("r-"), 0, 1)

    def test_tests_constrain_paths(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1, ["Stop"])
        g.add_node(2)
        g.add_edge(0, "r", 1)
        g.add_edge(1, "r", 2)
        c = compile_regex("r.{Stop}.r")
        assert rpq_holds(g, c, 0, 2)
        c2 = compile_regex("r.{!Stop}.r")
        assert not rpq_holds(g, c2, 0, 2)

    def test_cycle_wraps(self):
        g = cycle_graph(3, "r")
        assert rpq_holds(g, compile_regex("r.r.r"), 0, 0)
        assert rpq_targets(g, compile_regex("r*"), 0) == {0, 1, 2}


class TestWitnessPath:
    def test_path_found_and_matches(self):
        g = path_graph(4, "r")
        c = compile_regex("r.r*")
        path = witness_path(g, c, 0, 3)
        assert path is not None
        assert path[0][0] == 0 and path[-1][2] == 3

    def test_epsilon_witness(self):
        g = path_graph(1, "r")
        assert witness_path(g, compile_regex("r*"), 0, 0) == []

    def test_no_witness(self):
        g = path_graph(1, "r")
        assert witness_path(g, compile_regex("s"), 0, 1) is None

    def test_witness_includes_tests(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1)
        g.add_edge(0, "r", 1)
        path = witness_path(g, compile_regex("{A}.r"), 0, 1)
        assert path is not None
        assert len(path) == 2
        assert path[0][0] == path[0][2] == 0  # the test step stays in place


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 1000),
        st.sampled_from(["r*", "r.s", "(r|s)+", "r-.s", "r.{A}.s", "(r.s)*"]),
    )
    def test_relation_vs_path_enumeration(self, seed, regex_text):
        graph = random_graph(4, 6, ["A"], ["r", "s"], seed=seed)
        compiled = compile_regex(regex_text)
        relation = rpq_relation(graph, compiled)
        # brute force: enumerate label sequences via all bounded walks
        brute = set()
        from repro.graphs.labels import NodeLabel, Role

        def walks(node, word, depth):
            brute_add(node, word)
            if depth == 0:
                return
            for r_name in sorted(graph.role_names()):
                for role in (Role(r_name), Role(r_name, True)):
                    for succ in graph.successors(node, role):
                        walks(succ, word + [role], depth - 1)
            for name in ("A",):
                for lbl in (NodeLabel(name), NodeLabel(name, True)):
                    if graph.has_label(node, lbl) and (not word or word[-1] != lbl):
                        walks(node, word + [lbl], depth - 1)

        matches = {}

        def brute_add(node, word):
            matches.setdefault(node, []).append(list(word))

        for start in graph.node_list():
            matches = {}
            walks(start, [], 4)
            for end, words in matches.items():
                if any(compiled.matches(w) for w in words):
                    brute.add((start, end))
        # the product relation may find longer witnesses than depth 4, so
        # brute ⊆ relation always; equality on pairs witnessed within depth 4
        assert brute <= relation
