"""Regular expression AST, parser, classification, direct matching."""

import pytest

from repro.automata.regex import (
    Concat,
    Epsilon,
    Plus,
    RegexSyntaxError,
    Star,
    Sym,
    Union,
    concat,
    matches_word,
    parse_regex,
    star,
    sym,
    union,
)
from repro.graphs.labels import NodeLabel, Role


def word(*symbols):
    out = []
    for s in symbols:
        if s.startswith("{"):
            out.append(NodeLabel.parse(s[1:-1]))
        else:
            out.append(Role.parse(s))
    return out


class TestParser:
    def test_symbols(self):
        assert parse_regex("owns") == Sym(Role("owns"))
        assert parse_regex("owns-") == Sym(Role("owns", True))
        assert parse_regex("{A}") == Sym(NodeLabel("A"))
        assert parse_regex("{!A}") == Sym(NodeLabel("A", True))

    def test_concat_and_star(self):
        r = parse_regex("owns.earns.owns*")
        assert isinstance(r, Concat)
        assert isinstance(r.parts[-1], Star)

    def test_union_precedence(self):
        r = parse_regex("r | s.t")
        assert isinstance(r, Union)
        assert isinstance(r.parts[1], Concat)

    def test_juxtaposition_concatenates(self):
        assert parse_regex("r s") == parse_regex("r.s")

    def test_parens(self):
        r = parse_regex("(r|s)*")
        assert isinstance(r, Star) and isinstance(r.inner, Union)

    def test_epsilon(self):
        assert parse_regex("<eps>") == Epsilon()

    def test_postfix_operators(self):
        assert isinstance(parse_regex("r+"), Plus)
        assert str(parse_regex("r?")) == "r?"

    def test_errors(self):
        for bad in ("", "(r", "r)", "{unclosed", "|r", "r..s"):
            with pytest.raises(RegexSyntaxError):
                parse_regex(bad)

    def test_roundtrip_through_str(self):
        for text in ("owns.earns.{Partner}.owns*", "(r | s)*", "r+.s?", "{!A}.r"):
            assert parse_regex(str(parse_regex(text))) == parse_regex(text)


class TestClassification:
    def test_simple(self):
        assert parse_regex("r").is_simple()
        assert parse_regex("(r|s)*").is_simple()
        assert parse_regex("(r|s-)*").is_simple()
        assert not parse_regex("r.s").is_simple()
        assert not parse_regex("r+").is_simple()
        assert not parse_regex("({A})*").is_simple()

    def test_one_way(self):
        assert parse_regex("r.s*").is_one_way()
        assert not parse_regex("r.s-").is_one_way()

    def test_test_free(self):
        assert parse_regex("r.s").is_test_free()
        assert not parse_regex("r.{A}.s").is_test_free()


class TestMatching:
    def test_concat(self):
        r = parse_regex("r.s")
        assert matches_word(r, word("r", "s"))
        assert not matches_word(r, word("s", "r"))
        assert not matches_word(r, word("r"))

    def test_star(self):
        r = parse_regex("r*")
        assert matches_word(r, [])
        assert matches_word(r, word("r", "r", "r"))
        assert not matches_word(r, word("s"))

    def test_plus(self):
        r = parse_regex("r+")
        assert not matches_word(r, [])
        assert matches_word(r, word("r"))

    def test_optional(self):
        r = parse_regex("r?")
        assert matches_word(r, [])
        assert matches_word(r, word("r"))
        assert not matches_word(r, word("r", "r"))

    def test_tests_in_words(self):
        r = parse_regex("owns.{Partner}.owns")
        assert matches_word(r, word("owns", "{Partner}", "owns"))
        assert not matches_word(r, word("owns", "owns"))

    def test_union(self):
        r = parse_regex("r | s.s")
        assert matches_word(r, word("r"))
        assert matches_word(r, word("s", "s"))
        assert not matches_word(r, word("s"))


class TestCombinators:
    def test_builders(self):
        expr = concat("r", star(union("s", "t")))
        assert matches_word(expr, word("r", "s", "t", "s"))

    def test_sym_braces(self):
        assert sym("{A}").label == NodeLabel("A")
        assert sym("r-").label == Role("r", True)
