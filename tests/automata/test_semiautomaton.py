"""Semiautomata: Thompson compilation, runs, reversal, fast paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.regex import (
    Concat,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
    matches_word,
    parse_regex,
)
from repro.automata.semiautomaton import Semiautomaton, compile_regex, thompson
from repro.graphs.labels import NodeLabel, Role


class TestSemiautomaton:
    def test_add_and_query(self):
        auto = Semiautomaton()
        s, t = auto.add_state(), auto.add_state()
        auto.add_transition(s, Role("r"), t)
        assert auto.successors(s, Role("r")) == {t}
        assert auto.alphabet == {Role("r")}

    def test_transition_requires_states(self):
        auto = Semiautomaton()
        with pytest.raises(KeyError):
            auto.add_transition(0, Role("r"), 1)

    def test_run_exists(self):
        c = compile_regex("r.s")
        assert c.automaton.run_exists([Role("r"), Role("s")], c.pair.start, c.pair.end)
        assert not c.automaton.run_exists([Role("r")], c.pair.start, c.pair.end)

    def test_reversed_inverts_roles_not_tests(self):
        c = compile_regex("r.{A}")
        rev = c.automaton.reversed()
        assert Role("r", True) in rev.alphabet
        assert NodeLabel("A") in rev.alphabet

    def test_reversed_accepts_reversed_words(self):
        c = compile_regex("r.s")
        rev = c.automaton.reversed()
        assert rev.run_exists([Role("s", True), Role("r", True)], c.pair.end, c.pair.start)

    def test_disjoint_union(self):
        a = compile_regex("r").automaton
        b = compile_regex("s").automaton
        union, mapping = a.disjoint_union(b)
        assert len(union.states) == len(a.states) + len(b.states)
        assert set(mapping.values()) <= union.states

    def test_restricted_to(self):
        c = compile_regex("(r|s)")
        restricted = c.automaton.restricted_to([Role("r")])
        assert restricted.alphabet == {Role("r")}


class TestCompilation:
    def test_fast_path_sizes(self):
        assert len(compile_regex("r").automaton.states) == 2
        assert len(compile_regex("(r|s)*").automaton.states) == 1
        assert len(compile_regex("r+").automaton.states) == 2
        assert len(compile_regex("a.b.c").automaton.states) == 4

    def test_epsilon_tracking(self):
        assert compile_regex("r*").accepts_epsilon
        assert compile_regex("r?").accepts_epsilon
        assert not compile_regex("r").accepts_epsilon
        assert not compile_regex("r+").accepts_epsilon

    def test_thompson_generic(self):
        auto, pair = thompson(parse_regex("(r.s)|(s.r)"))
        assert auto.run_exists([Role("r"), Role("s")], pair.start, pair.end)
        assert auto.run_exists([Role("s"), Role("r")], pair.start, pair.end)
        assert not auto.run_exists([Role("r"), Role("r")], pair.start, pair.end)


# strategy: small random regexes over roles r, s and test {A}
def regexes(depth: int = 3) -> st.SearchStrategy[Regex]:
    leaves = st.sampled_from(
        [Sym(Role("r")), Sym(Role("s")), Sym(Role("r", True)), Sym(NodeLabel("A"))]
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: Concat(p)),
            st.tuples(children, children).map(lambda p: Union(p)),
            children.map(Star),
            children.map(Plus),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def words(max_len: int = 5):
    symbols = st.sampled_from([Role("r"), Role("s"), Role("r", True), NodeLabel("A")])
    return st.lists(symbols, max_size=max_len)


class TestCompiledSemanticsProperty:
    @settings(max_examples=200, deadline=None)
    @given(regexes(), words())
    def test_compiled_agrees_with_direct_matching(self, expr, word):
        compiled = compile_regex(expr)
        assert compiled.matches(word) == matches_word(expr, word)

    @settings(max_examples=100, deadline=None)
    @given(regexes())
    def test_epsilon_agrees(self, expr):
        compiled = compile_regex(expr)
        assert compiled.accepts_epsilon == matches_word(expr, [])
