"""Tree automata: runs, emptiness, products, and the ALC tree-model bridge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.tree import (
    Tree,
    TreeAutomaton,
    satisfiable_via_tree_automaton,
    tbox_tree_automaton,
    tree_to_graph,
)
from repro.dl.normalize import normalize
from repro.dl.reasoning import is_satisfiable
from repro.dl.tbox import TBox


def boolean_automaton():
    """Accepts trees evaluating to true: leaves 0/1, internal AND/OR."""
    auto = TreeAutomaton()
    auto.add_rule("1", (), True)
    auto.add_rule("0", (), False)
    for a in (True, False):
        for b in (True, False):
            auto.add_rule("AND", (a, b), a and b)
            auto.add_rule("OR", (a, b), a or b)
    auto.accepting = {True}
    return auto


class TestRuns:
    def test_accepts_true_tree(self):
        auto = boolean_automaton()
        tree = Tree("AND", (Tree("1"), Tree("OR", (Tree("0"), Tree("1")))))
        assert auto.accepts(tree)

    def test_rejects_false_tree(self):
        auto = boolean_automaton()
        tree = Tree("AND", (Tree("1"), Tree("0")))
        assert not auto.accepts(tree)

    def test_arity_mismatch_rejected(self):
        auto = boolean_automaton()
        assert not auto.accepts(Tree("AND", (Tree("1"),)))

    def test_tree_metrics(self):
        tree = Tree("AND", (Tree("1"), Tree("OR", (Tree("0"), Tree("1")))))
        assert tree.size() == 5
        assert tree.depth() == 3

    @settings(max_examples=50, deadline=None)
    @given(st.recursive(
        st.sampled_from(["0", "1"]).map(Tree),
        lambda children: st.tuples(
            st.sampled_from(["AND", "OR"]), st.tuples(children, children)
        ).map(lambda t: Tree(t[0], t[1])),
        max_leaves=6,
    ))
    def test_acceptance_matches_boolean_semantics(self, tree):
        def evaluate(node):
            if node.label == "1":
                return True
            if node.label == "0":
                return False
            values = [evaluate(c) for c in node.children]
            return all(values) if node.label == "AND" else any(values)

        assert boolean_automaton().accepts(tree) == evaluate(tree)


class TestEmptiness:
    def test_nonempty_with_witness(self):
        auto = boolean_automaton()
        witness = auto.witness()
        assert witness is not None
        assert auto.accepts(witness)

    def test_empty_language(self):
        auto = TreeAutomaton()
        auto.add_rule("a", ("q",), "q")  # no leaf rule: nothing is productive
        auto.accepting = {"q"}
        assert auto.is_empty()

    def test_intersection(self):
        only_true_leaves = TreeAutomaton()
        only_true_leaves.add_rule("1", (), "ok")
        only_true_leaves.add_rule("AND", ("ok", "ok"), "ok")
        only_true_leaves.add_rule("OR", ("ok", "ok"), "ok")
        only_true_leaves.accepting = {"ok"}
        both = boolean_automaton().intersect(only_true_leaves)
        witness = both.witness()
        assert witness is not None
        assert boolean_automaton().accepts(witness)
        assert only_true_leaves.accepts(witness)

    def test_empty_intersection(self):
        zeros = TreeAutomaton()
        zeros.add_rule("0", (), "z")
        zeros.accepting = {"z"}
        ones = TreeAutomaton()
        ones.add_rule("1", (), "o")
        ones.accepting = {"o"}
        assert zeros.intersect(ones).is_empty()


ALC_SCHEMAS = [
    [],
    [("A", "exists r.B")],
    [("A", "exists r.B"), ("A", "forall r.~B")],
    [("A", "B | C"), ("B", "bottom"), ("C", "bottom")],
    [("A", "exists r.B"), ("B", "exists r.C"), ("C", "forall s.A")],
    [("A", "exists r.A")],
]


class TestALCBridge:
    def test_rejects_non_alc(self):
        with pytest.raises(ValueError):
            tbox_tree_automaton(normalize(TBox.of([("A", ">=2 r.B")])))
        with pytest.raises(ValueError):
            tbox_tree_automaton(normalize(TBox.of([("A", "exists r-.B")])))

    def test_witness_graph_is_model(self):
        tbox = normalize(TBox.of([("A", "exists r.B"), ("B", "exists s.C")]))
        auto = tbox_tree_automaton(tbox, extra_names=["A"])
        witness = auto.witness()
        assert witness is not None
        graph = tree_to_graph(witness)
        assert tbox.satisfied_by(graph)

    @pytest.mark.parametrize("index", range(len(ALC_SCHEMAS)))
    @pytest.mark.parametrize("label", ["A", "B", "C"])
    def test_agrees_with_type_elimination(self, index, label):
        """Tree-automaton emptiness == type-elimination satisfiability.

        Note the caveat: the tree automaton only sees *finite* trees, so a
        TBox like A ⊑ ∃r.A (which needs an infinite tree or a cycle) is
        tree-UNsatisfiable while being satisfiable over graphs.  The two
        oracles agree exactly on TBoxes whose obligations terminate.
        """
        tbox = normalize(TBox.of(ALC_SCHEMAS[index]))
        tree_sat = satisfiable_via_tree_automaton(label, tbox)
        elim_sat = is_satisfiable(label, tbox)
        if tree_sat:
            assert elim_sat  # finite tree models are graphs
        if index != 5:  # the looping schema is the documented divergence
            assert tree_sat == elim_sat, (index, label)

    def test_infinite_tree_divergence(self):
        """A ⊑ ∃r.A: satisfiable over graphs (a cycle) but by no finite tree."""
        tbox = normalize(TBox.of([("A", "exists r.A")]))
        assert is_satisfiable("A", tbox)
        assert not satisfiable_via_tree_automaton("A", tbox)
