"""Checksummed persistence: CRC32 per journal line, quarantine of bad
lines, the ``audit.bitflip`` fault site, and cache-dir startup hygiene."""

import json
import os

import pytest

from repro.obs import REGISTRY
from repro.resilience.faults import injected_faults
from repro.service.cache import (
    JOURNAL_NAME,
    QUARANTINE_NAME,
    SEMANTIC_JOURNAL_NAME,
    DecisionCache,
    line_crc,
)

KEY_A = ("exact", "lhs-a", "rhs-a", "auto", "tbox")
KEY_B = ("exact", "lhs-b", "rhs-b", "auto", "tbox")
VERDICT = {"contained": True, "complete": True, "countermodel": None}


def test_journal_lines_carry_crc(tmp_path):
    cache = DecisionCache(tmp_path)
    cache.put(KEY_A, VERDICT)
    entry = json.loads((tmp_path / JOURNAL_NAME).read_text().splitlines()[0])
    crc = entry.pop("crc")
    assert crc == line_crc(entry)


def test_crc_roundtrip_reloads(tmp_path):
    cache = DecisionCache(tmp_path)
    cache.put(KEY_A, VERDICT)
    reloaded = DecisionCache(tmp_path)
    assert reloaded.get(KEY_A) == VERDICT
    assert reloaded.crc_failures == 0


def test_legacy_lines_without_crc_still_load(tmp_path):
    cache = DecisionCache(tmp_path)
    cache.put(KEY_A, VERDICT)
    journal = tmp_path / JOURNAL_NAME
    entry = json.loads(journal.read_text().splitlines()[0])
    entry.pop("crc")
    journal.write_text(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
    reloaded = DecisionCache(tmp_path)
    assert reloaded.get(KEY_A) == VERDICT
    assert reloaded.crc_failures == 0


def test_flipped_line_is_quarantined_not_served(tmp_path):
    cache = DecisionCache(tmp_path)
    cache.put(KEY_A, VERDICT)
    cache.put(KEY_B, VERDICT)
    journal = tmp_path / JOURNAL_NAME
    lines = journal.read_text().splitlines()
    # corrupt one byte of the first line's payload, CRC left as-was
    bad = lines[0].replace('"contained":true', '"contained":folse', 1)
    journal.write_text("\n".join([bad] + lines[1:]) + "\n")

    reloaded = DecisionCache(tmp_path)
    assert reloaded.get(KEY_A) is None  # never served
    assert reloaded.get(KEY_B) == VERDICT  # the good line survives
    assert reloaded.crc_failures + reloaded.corrupt_entries >= 1
    quarantine = (tmp_path / QUARANTINE_NAME).read_text().splitlines()
    assert len(quarantine) == 1
    record = json.loads(quarantine[0])
    assert record["journal"] == JOURNAL_NAME
    assert record["reason"] in ("crc", "corrupt")


def test_crc_mismatch_with_valid_json_is_caught(tmp_path):
    """A 'silent' corruption: the line still parses and has the right
    shape, only the payload changed — exactly what a checksum is for."""
    cache = DecisionCache(tmp_path)
    cache.put(KEY_A, {"contained": False, "complete": True, "countermodel": None})
    journal = tmp_path / JOURNAL_NAME
    entry = json.loads(journal.read_text().splitlines()[0])
    entry["verdict"]["contained"] = True  # flip the verdict, keep the crc
    journal.write_text(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
    reloaded = DecisionCache(tmp_path)
    assert reloaded.get(KEY_A) is None
    assert reloaded.crc_failures == 1


def test_bitflip_fault_site_corrupts_then_quarantines(tmp_path):
    before = REGISTRY.get("audit.bitflip.injected")
    with injected_faults("audit.bitflip:raise:1"):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        cache.put(KEY_B, VERDICT)
    assert REGISTRY.get("audit.bitflip.injected") == before + 1

    reloaded = DecisionCache(tmp_path)
    served = [k for k in (KEY_A, KEY_B) if reloaded.get(k) == VERDICT]
    assert len(served) == 1  # the flipped line is gone, the other intact
    assert reloaded.crc_failures + reloaded.corrupt_entries == 1
    assert reloaded.quarantine_count() == 1


def test_semantic_journal_crc_quarantine(tmp_path):
    cache = DecisionCache(tmp_path)
    cache.put_semantic(("g",), "A(x)", {"contained": False, "complete": True,
                                        "countermodel": None})
    journal = tmp_path / SEMANTIC_JOURNAL_NAME
    entry = json.loads(journal.read_text().splitlines()[0])
    entry["lhs"] = "B(x)"  # tamper without recomputing the crc
    journal.write_text(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
    reloaded = DecisionCache(tmp_path)
    assert reloaded.semantic_crc_failures == 1
    assert reloaded.semantic_stats()["entries"] == 0
    record = json.loads((tmp_path / QUARANTINE_NAME).read_text().splitlines()[0])
    assert record["journal"] == SEMANTIC_JOURNAL_NAME


def test_scrub_files_catches_corruption_behind_a_loaded_cache(tmp_path):
    cache = DecisionCache(tmp_path)
    cache.put(KEY_A, VERDICT)
    journal = tmp_path / JOURNAL_NAME
    # corrupt on disk *after* load — only a scrub pass can see it
    journal.write_text(journal.read_text().replace('"contained":true',
                                                   '"contained":folse', 1))
    report = cache.scrub_files()
    assert report[JOURNAL_NAME]["quarantined"] == 1
    # the scrub compacted the journal from the (clean) in-memory index
    reloaded = DecisionCache(tmp_path)
    assert reloaded.get(KEY_A) == VERDICT
    assert reloaded.crc_failures == 0


# ------------------------------------------------------------------ #
# startup hygiene


def test_symlinked_journal_is_refused(tmp_path):
    target = tmp_path / "elsewhere.jsonl"
    target.write_text("")
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    os.symlink(target, cache_dir / JOURNAL_NAME)
    with pytest.raises(OSError, match="symlink"):
        DecisionCache(cache_dir)


def test_fifo_journal_is_refused(tmp_path):
    os.mkfifo(tmp_path / SEMANTIC_JOURNAL_NAME)
    with pytest.raises(OSError, match="non-regular"):
        DecisionCache(tmp_path)


def test_regular_files_are_accepted(tmp_path):
    DecisionCache(tmp_path).put(KEY_A, VERDICT)
    assert DecisionCache(tmp_path).get(KEY_A) == VERDICT
