"""Property: every countermodel the decision procedure emits replays.

The semantic cache's rule (b) answers False for a new P by *evaluating*
a stored countermodel M against P.  That inference is sound only if the
procedure's countermodels are genuine witnesses: M satisfies the schema,
M satisfies the left-hand side, M refutes the right-hand side — all
checkable by the compiled matchers, no search involved.  Here we
property-test exactly that contract over random query/schema pairs, and
then the round trip: a countermodel pushed through the wire codec and
into a lattice still answers its own P.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.semantic import SemanticLattice
from repro.core.containment import (
    decision_key,
    decision_key_parts,
    is_contained,
)
from repro.core.containment import ContainmentOptions
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.io import graph_from_dict, graph_to_dict
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_query

LHS_QUERIES = [
    "A(x)",
    "A(x), r(x,y)",
    "A(x), r(x,y), B(y)",
    "r*(x,y), A(y)",
    "A(x); B(x)",
    "r(x,y), r(y,z)",
]

RHS_QUERIES = [
    "B(x)",
    "B(x), r(x,y)",
    "r(x,y), C(y)",
    "r*(x,y), B(y), C(y)",
    "s(x,y)",
]

SCHEMAS = [
    [],
    [("A", "B")],
    [("A", "B | C")],
    [("A", "!C"), ("B", "C")],
]


class TestCountermodelsReplay:
    @settings(max_examples=80, deadline=None)
    @given(
        st.sampled_from(LHS_QUERIES),
        st.sampled_from(RHS_QUERIES),
        st.sampled_from(SCHEMAS),
    )
    def test_emitted_countermodel_is_a_genuine_witness(
        self, lhs_text, rhs_text, cis
    ):
        tbox = normalize(TBox.of(cis)) if cis else None
        result = is_contained(lhs_text, rhs_text, tbox)
        if result.countermodel is None:
            return
        witness = (lhs_text, rhs_text, cis)
        model = result.countermodel
        assert result.contained is False, witness
        assert satisfies_union(model, parse_query(lhs_text)), witness
        assert not satisfies_union(model, parse_query(rhs_text)), witness
        if tbox is not None:
            assert tbox.satisfied_by(model), witness

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(LHS_QUERIES),
        st.sampled_from(RHS_QUERIES),
        st.sampled_from(SCHEMAS),
    )
    def test_countermodel_survives_wire_codec(self, lhs_text, rhs_text, cis):
        tbox = normalize(TBox.of(cis)) if cis else None
        result = is_contained(lhs_text, rhs_text, tbox)
        if result.countermodel is None:
            return
        revived = graph_from_dict(graph_to_dict(result.countermodel))
        assert satisfies_union(revived, parse_query(lhs_text))
        assert not satisfies_union(revived, parse_query(rhs_text))
        if tbox is not None:
            assert tbox.satisfied_by(revived)

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(LHS_QUERIES),
        st.sampled_from(RHS_QUERIES),
        st.sampled_from(SCHEMAS),
    )
    def test_stored_countermodel_answers_its_own_premise(
        self, lhs_text, rhs_text, cis
    ):
        """Round trip through the lattice: insert the False verdict, look
        the *same* P back up — rule (b) must fire and return False."""
        tbox = normalize(TBox.of(cis)) if cis else None
        result = is_contained(lhs_text, rhs_text, tbox)
        if result.countermodel is None or result.deadline_expired:
            return
        options = ContainmentOptions()
        key = decision_key(lhs_text, rhs_text, tbox, "auto", options)
        lhs_key, group_key = decision_key_parts(key)
        verdict = {
            "format": 1,
            "contained": False,
            "complete": result.complete,
            "method": result.method,
            "seeds_tried": result.seeds_tried,
            "supported_by_theory": result.supported_by_theory,
            "countermodel": graph_to_dict(result.countermodel),
        }
        lattice = SemanticLattice()
        lhs = parse_query(lhs_text)
        assert lattice.insert(group_key, lhs, lhs_key, verdict)
        hit = lattice.lookup(
            group_key, lhs, lhs_key, rhs=parse_query(rhs_text), tbox=tbox
        )
        assert hit is not None, (lhs_text, rhs_text, cis)
        assert hit.kind == "countermodel"
        assert hit.contained is False
