"""Cache-option identity: ``semantic_cache`` selects *how* an answer is
obtained, never *what* it is.

Three obligations:

* on a workload the lattice cannot serve (no near-duplicates), responses
  are byte-identical with the option on or off (modulo ``elapsed_ms``);
* on a workload the lattice does serve, verdict content (``contained``,
  ``complete``) agrees everywhere, semantic responses are certain, and a
  replayed countermodel independently verifies against the new P, Q, T;
* semantic hits are never written back to the exact journal or the
  scheduler's dedup memo as fresh decisions — they are derived facts.
"""

import io
import json

from repro.core.containment import decision_key
from repro.dl.normalize import normalize
from repro.io import graph_from_dict, tbox_from_dict
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_query
from repro.service.protocol import build_options
from repro.service.server import ContainmentServer
from repro.service.sessions import reset_process_caches

SCHEMA_CIS = [["A", "B | C"]]
SCHEMA = {"type": "schema", "ref": "s", "tbox": {"cis": SCHEMA_CIS}}
RHS = "r*(x,y), B(y), C(y)"


def run(requests, tmp_path, tag, semantic_cache):
    reset_process_caches()
    server = ContainmentServer(
        cache_dir=tmp_path / tag, use_cache=True, semantic_cache=semantic_cache
    )
    lines = [SCHEMA] + [
        {"type": "decide", "id": rid, "lhs": lhs, "rhs": rhs, "schema_ref": "s"}
        for rid, lhs, rhs in requests
    ]
    out = io.StringIO()
    server.serve_pipe(
        io.StringIO("\n".join(json.dumps(l) for l in lines) + "\n"), out
    )
    responses = {}
    for raw in out.getvalue().splitlines():
        response = json.loads(raw)
        if response["type"] == "verdict":
            response.pop("elapsed_ms")
            responses[response["id"]] = response
    return server, responses


def path_lhs(n):
    labels = ", ".join(f"A(x{i})" for i in range(n))
    edges = ", ".join(f"r(x{i},x{i+1})" for i in range(n - 1))
    return f"{labels}, {edges}"


class TestByteIdentity:
    def test_no_hit_workload_byte_identical(self, tmp_path):
        # every request is a distinct fresh decision: the lattice never
        # answers, so the wire responses must match byte for byte
        requests = [
            ("r1", "A(x)", "B(x)"),
            ("r2", path_lhs(3), RHS),
            ("r3", "B(x), r(x,y)", "r(x,y), C(y)"),
        ]
        _, with_sem = run(requests, tmp_path, "on", semantic_cache=True)
        _, without = run(requests, tmp_path, "off", semantic_cache=False)
        assert with_sem == without

    def test_hit_workload_verdicts_agree_and_replay_verifies(self, tmp_path):
        requests = [
            ("seed", path_lhs(5), RHS),
            ("dup-short", path_lhs(3), RHS),
            ("dup-shorter", path_lhs(2), RHS),
        ]
        _, with_sem = run(requests, tmp_path, "on", semantic_cache=True)
        _, without = run(requests, tmp_path, "off", semantic_cache=False)
        assert with_sem["seed"] == without["seed"]
        served = [r for r in with_sem.values() if r["source"] == "semantic"]
        assert served, "hit workload never exercised the semantic path"
        tbox = normalize(tbox_from_dict({"cis": SCHEMA_CIS}))
        rhs = parse_query(RHS)
        for rid, lhs_text in (("dup-short", path_lhs(3)), ("dup-shorter", path_lhs(2))):
            on, off = with_sem[rid], without[rid]
            assert on["verdict"]["contained"] == off["verdict"]["contained"]
            assert on["verdict"]["complete"] is True
            if on["source"] != "semantic":
                continue
            assert on["verdict"]["method"] == "semantic.countermodel"
            model = graph_from_dict(on["verdict"]["countermodel"])
            assert tbox.satisfied_by(model)
            assert satisfies_union(model, parse_query(lhs_text))
            assert not satisfies_union(model, rhs)

    def test_per_request_opt_out(self, tmp_path):
        reset_process_caches()
        server = ContainmentServer(
            cache_dir=tmp_path / "opt", use_cache=True, semantic_cache=True
        )
        lines = [
            SCHEMA,
            {"type": "decide", "id": "seed", "lhs": path_lhs(4), "rhs": RHS,
             "schema_ref": "s"},
            {"type": "decide", "id": "dup", "lhs": path_lhs(2), "rhs": RHS,
             "schema_ref": "s", "options": {"semantic_cache": False}},
        ]
        out = io.StringIO()
        server.serve_pipe(
            io.StringIO("\n".join(json.dumps(l) for l in lines) + "\n"), out
        )
        responses = {
            json.loads(l)["id"]: json.loads(l)
            for l in out.getvalue().splitlines()
            if json.loads(l)["type"] == "verdict"
        }
        assert responses["dup"]["source"] == "computed"


class TestSemanticHitsNeverJournaled:
    def test_journal_and_memo_untouched_by_inference(self, tmp_path):
        requests = [
            ("seed", path_lhs(4), RHS),
            ("dup", path_lhs(2), RHS),
        ]
        server, responses = run(requests, tmp_path, "j", semantic_cache=True)
        assert responses["dup"]["source"] == "semantic"
        tbox = normalize(tbox_from_dict({"cis": SCHEMA_CIS}))
        dup_key = decision_key(
            path_lhs(2), RHS, tbox, method="auto", options=build_options({})
        )
        # neither the journal nor the dedup memo recorded a decision for
        # the semantically served key ...
        assert server.scheduler.cache.get(dup_key) is None
        assert server.scheduler._results.get(dup_key) is None
        # ... and the journal holds exactly the one computed decision
        assert len(server.scheduler.cache) == 1
        assert server.metrics.counter("decisions_executed") == 1

    def test_exact_repeat_after_semantic_hit_recomputes_once(self, tmp_path):
        # a later *exact* repeat of a semantically served request still
        # records a fresh search-produced verdict in the journal
        requests = [
            ("seed", path_lhs(4), RHS),
            ("dup", path_lhs(2), RHS),
            ("dup-again", path_lhs(2), RHS),
        ]
        server, responses = run(requests, tmp_path, "r", semantic_cache=True)
        assert responses["dup"]["source"] == "semantic"
        assert responses["dup-again"]["source"] == "semantic"
        assert server.metrics.counter("decisions_executed") == 1
