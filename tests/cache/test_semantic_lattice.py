"""Unit tests for the semantic containment lattice.

The lattice's contract: only *usable* premises are stored (certain Trues,
Falses with countermodels), lookups answer exclusively through the two
sound rules (transitivity over all-graphs edges, countermodel replay),
edges come only from the syntactic subset screen and *complete* baseline
probes, and the per-session caps evict LRU-first without ever corrupting
the order.
"""

import pytest

from repro.cache.semantic import (
    COUNTER_EVICT,
    COUNTER_HIT_COUNTERMODEL,
    COUNTER_HIT_TRANSITIVE,
    COUNTER_PROBE,
    COUNTER_REJECT,
    SemanticLattice,
    syntactic_subset,
)
from repro.core.reduction import query_key
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.graph import Graph
from repro.io import FORMAT_VERSION, graph_to_dict
from repro.obs import REGISTRY
from repro.queries.parser import parse_query

GROUP = ("auto", ("rhs",), ("schema",), ("opts",))


def q(text):
    return parse_query(text)


def key_of(text):
    return query_key(parse_query(text))


def true_verdict(**over):
    verdict = {
        "format": FORMAT_VERSION,
        "contained": True,
        "complete": True,
        "method": "sparse",
        "seeds_tried": 1,
        "supported_by_theory": True,
        "countermodel": None,
    }
    verdict.update(over)
    return verdict


def false_verdict(graph):
    return true_verdict(
        contained=False, countermodel=graph_to_dict(graph), method="sparse"
    )


def path_model(n):
    graph = Graph()
    for i in range(n):
        graph.add_node(f"v{i}", ["A", "B"])
    for i in range(n - 1):
        graph.add_edge(f"v{i}", "r", f"v{i+1}")
    return graph


def counter(name):
    return REGISTRY.get(name)


class TestSyntacticSubset:
    def test_subset_and_equal(self):
        assert syntactic_subset(key_of("A(x)"), key_of("A(x); B(x)"))
        assert syntactic_subset(key_of("A(x)"), key_of("A(x)"))

    def test_not_subset(self):
        assert not syntactic_subset(key_of("C(x)"), key_of("A(x); B(x)"))

    def test_subset_is_textual_on_canonical_disjuncts(self):
        # query_key preserves variable names: a renamed disjunct is not a
        # *syntactic* subset (the probe path handles those, soundly)
        assert syntactic_subset(key_of("B(x)"), key_of("A(x); B(x)"))
        assert not syntactic_subset(key_of("B(zz)"), key_of("A(x); B(x)"))

    def test_empty_sub_is_never_a_subset(self):
        assert not syntactic_subset((), key_of("A(x)"))


class TestInsert:
    def test_usable_true_stored(self):
        lattice = SemanticLattice()
        assert lattice.insert(GROUP, q("A(x)"), key_of("A(x)"), true_verdict())
        assert len(lattice) == 1

    def test_incomplete_true_rejected(self):
        # "no countermodel found within budget" proves nothing about P',
        # so nothing about any P below it — it must never become a premise
        lattice = SemanticLattice()
        assert not lattice.insert(
            GROUP, q("A(x)"), key_of("A(x)"), true_verdict(complete=False)
        )

    def test_false_without_countermodel_rejected(self):
        lattice = SemanticLattice()
        assert not lattice.insert(
            GROUP, q("A(x)"), key_of("A(x)"),
            true_verdict(contained=False, complete=False),
        )

    def test_deadline_cut_verdict_rejected(self):
        lattice = SemanticLattice()
        assert not lattice.insert(
            GROUP, q("A(x)"), key_of("A(x)"),
            true_verdict(deadline_expired=True),
        )

    def test_duplicate_lhs_in_group_kept_once(self):
        lattice = SemanticLattice()
        assert lattice.insert(GROUP, q("A(x)"), key_of("A(x)"), true_verdict())
        assert not lattice.insert(GROUP, q("A(x)"), key_of("A(x)"), true_verdict())
        assert len(lattice) == 1


class TestTransitivity:
    def test_syntactic_subset_answers_true(self):
        lattice = SemanticLattice()
        lattice.insert(GROUP, q("A(x); B(x)"), key_of("A(x); B(x)"), true_verdict())
        before = counter(COUNTER_HIT_TRANSITIVE)
        hit = lattice.lookup(GROUP, q("A(x)"), key_of("A(x)"))
        assert hit is not None and hit.kind == "transitive" and hit.contained
        assert hit.premise_key == key_of("A(x); B(x)")
        assert counter(COUNTER_HIT_TRANSITIVE) == before + 1

    def test_edges_cross_groups(self):
        # the partial order is schema/rhs-independent: a premise inserted
        # under one group seeds edges usable by lookups in another
        other = ("auto", ("other-rhs",), ("schema",), ("opts",))
        lattice = SemanticLattice()
        lattice.insert(GROUP, q("A(x); B(x)"), key_of("A(x); B(x)"), true_verdict())
        lattice.insert(other, q("A(x); B(x)"), key_of("A(x); B(x)"), true_verdict())
        hit = lattice.lookup(other, q("A(x)"), key_of("A(x)"))
        assert hit is not None and hit.kind == "transitive"

    def test_unrelated_query_misses(self):
        lattice = SemanticLattice()
        lattice.insert(GROUP, q("A(x); B(x)"), key_of("A(x); B(x)"), true_verdict())
        assert lattice.lookup(GROUP, q("C(x)"), key_of("C(x)")) is None

    def test_false_premise_never_used_transitively(self):
        # P ⊆ P' and P' ⊄ Q says nothing about P ⊆ Q: a False premise
        # above us must not produce a False (or any) transitive answer
        lattice = SemanticLattice(replay_budget=0)
        lattice.insert(
            GROUP, q("A(x); B(x)"), key_of("A(x); B(x)"),
            false_verdict(path_model(1)),
        )
        assert lattice.lookup(GROUP, q("A(x)"), key_of("A(x)")) is None


class TestCountermodelReplay:
    def test_model_matching_new_lhs_answers_false(self):
        lattice = SemanticLattice()
        model = path_model(4)  # matches any shorter A-labelled r-path
        lattice.insert(
            GROUP, q("A(x0), A(x1), r(x0,x1)"),
            key_of("A(x0), A(x1), r(x0,x1)"), false_verdict(model),
        )
        before = counter(COUNTER_HIT_COUNTERMODEL)
        hit = lattice.lookup(GROUP, q("A(x)"), key_of("A(x)"))
        assert hit is not None and hit.kind == "countermodel"
        assert not hit.contained
        assert hit.countermodel == graph_to_dict(model)
        assert counter(COUNTER_HIT_COUNTERMODEL) == before + 1

    def test_model_missing_new_lhs_is_a_miss(self):
        lattice = SemanticLattice()
        lattice.insert(
            GROUP, q("A(x)"), key_of("A(x)"), false_verdict(path_model(2))
        )
        assert lattice.lookup(GROUP, q("C(x)"), key_of("C(x)")) is None

    def test_untrusted_model_violating_schema_is_rejected(self):
        # hydrated-from-disk records are re-verified before first use: a
        # model that breaks T (or matches Q) must never answer anything
        lattice = SemanticLattice()
        model = path_model(2)  # nodes are A,B — violates A ⊑ C
        lattice.insert(
            GROUP, q("A(x), r(x,y)"), key_of("A(x), r(x,y)"),
            false_verdict(model), trusted=False,
        )
        tbox = normalize(TBox.of([("A", "C")]))
        before = counter(COUNTER_REJECT)
        assert (
            lattice.lookup(GROUP, q("A(x)"), key_of("A(x)"), tbox=tbox) is None
        )
        assert counter(COUNTER_REJECT) == before + 1
        # the record is marked bad: a second lookup doesn't re-verify
        assert (
            lattice.lookup(GROUP, q("A(x)"), key_of("A(x)"), tbox=tbox) is None
        )
        assert counter(COUNTER_REJECT) == before + 1

    def test_untrusted_model_matching_rhs_is_rejected(self):
        lattice = SemanticLattice()
        lattice.insert(
            GROUP, q("A(x)"), key_of("A(x)"),
            false_verdict(path_model(2)), trusted=False,
        )
        assert (
            lattice.lookup(GROUP, q("A(x)"), key_of("A(x)"), rhs=q("B(y)"))
            is None
        )

    def test_replay_hit_returns_private_countermodel_copy(self):
        # a caller mutating the returned verdict must not poison the
        # stored record for future replays (wire dicts nest lists, so a
        # reference or shallow copy would leak)
        lattice = SemanticLattice()
        model = path_model(4)
        lattice.insert(GROUP, q("A(x)"), key_of("A(x)"), false_verdict(model))
        hit = lattice.lookup(GROUP, q("B(x)"), key_of("B(x)"))
        assert hit is not None and hit.kind == "countermodel"
        hit.countermodel["nodes"].clear()
        hit.countermodel["edges"].clear()
        again = lattice.lookup(GROUP, q("B(x)"), key_of("B(x)"))
        assert again is not None
        assert again.countermodel == graph_to_dict(model)

    def test_untrusted_model_passing_verification_answers(self):
        lattice = SemanticLattice()
        lattice.insert(
            GROUP, q("A(x)"), key_of("A(x)"),
            false_verdict(path_model(2)), trusted=False,
        )
        hit = lattice.lookup(
            GROUP, q("A(x), r(x,y)"), key_of("A(x), r(x,y)"), rhs=q("C(z)")
        )
        assert hit is not None and hit.kind == "countermodel"


class TestProbes:
    def test_probe_finds_non_syntactic_all_graphs_edge(self):
        # "A(x), A(y)" ⊆ "A(x)" on all graphs (collapse x=y), but the
        # disjunct keys differ — only a baseline probe can add this edge
        lattice = SemanticLattice()
        lattice.insert(GROUP, q("A(x)"), key_of("A(x)"), true_verdict())
        before = counter(COUNTER_PROBE)
        hit = lattice.lookup(GROUP, q("A(x), A(y)"), key_of("A(x), A(y)"))
        assert hit is not None and hit.kind == "transitive"
        assert counter(COUNTER_PROBE) == before + 1
        # the edge is now known: repeating the lookup pays no second probe
        assert lattice.lookup(GROUP, q("A(x), A(y)"), key_of("A(x), A(y)"))
        assert counter(COUNTER_PROBE) == before + 1

    def test_failed_probe_pair_remembered(self):
        lattice = SemanticLattice()
        lattice.insert(GROUP, q("B(x)"), key_of("B(x)"), true_verdict())
        before = counter(COUNTER_PROBE)
        assert lattice.lookup(GROUP, q("C(x)"), key_of("C(x)")) is None
        assert counter(COUNTER_PROBE) == before + 1
        assert lattice.lookup(GROUP, q("C(x)"), key_of("C(x)")) is None
        assert counter(COUNTER_PROBE) == before + 1

    def test_probe_rejects_truncated_finite_language(self):
        # regression: P = (r.r.r.r)(x,y) has a *finite* language whose only
        # word is longer than the probe word bound (3), so the probe
        # enumerates zero expansions.  That must read as incomplete — a
        # transitive hit here would certify the false P ⊆ s(x,y) having
        # tested nothing.
        lattice = SemanticLattice()
        lattice.insert(GROUP, q("s(x,y)"), key_of("s(x,y)"), true_verdict())
        before = counter(COUNTER_PROBE)
        assert (
            lattice.lookup(
                GROUP, q("(r.r.r.r)(x,y)"), key_of("(r.r.r.r)(x,y)")
            )
            is None
        )
        assert counter(COUNTER_PROBE) == before + 1

    def test_probe_budget_bounds_work_per_lookup(self):
        lattice = SemanticLattice(probe_budget=2)
        for i in range(5):
            text = f"B{i}(x)"
            lattice.insert(GROUP, q(text), key_of(text), true_verdict())
        before = counter(COUNTER_PROBE)
        assert lattice.lookup(GROUP, q("C(x)"), key_of("C(x)")) is None
        assert counter(COUNTER_PROBE) == before + 2


class TestEviction:
    def test_lru_eviction_drops_nodes_edges_and_records(self):
        lattice = SemanticLattice(max_nodes=3)
        for i in range(5):
            text = f"B{i}(x)"
            lattice.insert(GROUP, q(text), key_of(text), true_verdict())
        stats = lattice.stats()
        assert stats["nodes"] == 3
        assert stats["records"] == 3
        assert len(lattice) == 3

    def test_eviction_counted(self):
        before = counter(COUNTER_EVICT)
        lattice = SemanticLattice(max_nodes=1)
        lattice.insert(GROUP, q("B0(x)"), key_of("B0(x)"), true_verdict())
        lattice.insert(GROUP, q("B1(x)"), key_of("B1(x)"), true_verdict())
        assert counter(COUNTER_EVICT) == before + 1

    def test_evicted_premise_no_longer_answers(self):
        lattice = SemanticLattice(max_nodes=3, probe_budget=0)
        lattice.insert(GROUP, q("A(x); B(x)"), key_of("A(x); B(x)"), true_verdict())
        lattice.insert(GROUP, q("C(x); D(x)"), key_of("C(x); D(x)"), true_verdict())
        # answers while the premise is live ...
        assert lattice.lookup(GROUP, q("A(x)"), key_of("A(x)")) is not None
        # ... an unrelated lookup pushes node count past the cap, evicting
        # the LRU premise, after which the same request is a sound miss
        assert lattice.lookup(GROUP, q("E(x)"), key_of("E(x)")) is None
        assert lattice.lookup(GROUP, q("A(x)"), key_of("A(x)")) is None

    def test_record_cap_respected(self):
        lattice = SemanticLattice(max_records=2)
        for i in range(4):
            text = f"B{i}(x)"
            lattice.insert(GROUP, q(text), key_of(text), true_verdict())
        assert len(lattice) <= 2

    def test_record_cap_skips_recordless_lru_node(self):
        # the record cap is about records: a record-less LRU victim moves
        # nothing, so eviction must pass over it and drop the oldest node
        # that actually owns a record
        lattice = SemanticLattice(max_records=1, probe_budget=0)
        lattice.insert(GROUP, q("B0(x)"), key_of("B0(x)"), true_verdict())
        # create a record-less node, then touch B0 so it becomes the LRU
        assert lattice.lookup(GROUP, q("C(x)"), key_of("C(x)")) is None
        assert lattice.lookup(GROUP, q("B0(x)"), key_of("B0(x)")) is not None
        lattice.insert(GROUP, q("B1(x)"), key_of("B1(x)"), true_verdict())
        assert len(lattice) == 1  # enforced even with a record-less LRU
        assert lattice.lookup(GROUP, q("B0(x)"), key_of("B0(x)")) is None
        assert lattice.lookup(GROUP, q("B1(x)"), key_of("B1(x)")) is not None


class TestHydrationBookkeeping:
    def test_needs_hydration_flips_once(self):
        lattice = SemanticLattice()
        assert lattice.needs_hydration("digest-1")
        lattice.mark_hydrated("digest-1")
        assert not lattice.needs_hydration("digest-1")
        assert lattice.needs_hydration("digest-2")
