"""The semantic journal: persistence, tolerance, hydration, trust.

Same contract as the exact decision journal (corrupt and stale lines are
skipped and counted, never fatal; damaged journals self-compact; torn
tails are repaired) plus the semantic layer's own obligation: premises
hydrated from disk are *untrusted* until their countermodels re-verify
against the live schema and right-hand side.
"""

import io
import json

import pytest

from repro.service.cache import (
    SEMANTIC_JOURNAL_NAME,
    DecisionCache,
    semantic_group_digest,
)
from repro.service.server import ContainmentServer
from repro.service.sessions import reset_process_caches

GROUP_KEY = ("auto", ("rhs",), ("schema",), ("opts",))

TRUE_VERDICT = {
    "format": 1, "contained": True, "complete": True, "method": "sparse",
    "seeds_tried": 1, "supported_by_theory": True, "countermodel": None,
}


def digest_of(cache):
    return semantic_group_digest(GROUP_KEY, cache.fingerprint)


class TestSemanticJournal:
    def test_round_trip_across_instances(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put_semantic(digest_of(cache), "A(x); B(x)", TRUE_VERDICT)
        reloaded = DecisionCache(tmp_path)
        entries = reloaded.semantic_entries(digest_of(reloaded))
        assert entries == [("A(x); B(x)", TRUE_VERDICT)]

    def test_duplicate_premise_kept_once(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put_semantic(digest_of(cache), "A(x)", TRUE_VERDICT)
        cache.put_semantic(digest_of(cache), "A(x)", TRUE_VERDICT)
        assert len(cache.semantic_entries(digest_of(cache))) == 1
        assert cache.semantic_stats()["entries"] == 1

    def test_corrupt_lines_skipped_counted_and_healed(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put_semantic(digest_of(cache), "A(x)", TRUE_VERDICT)
        journal = tmp_path / SEMANTIC_JOURNAL_NAME
        journal.write_text(journal.read_text() + "{torn\nnot json at all\n")
        reloaded = DecisionCache(tmp_path)
        assert reloaded.semantic_corrupt_entries == 2
        assert len(reloaded.semantic_entries(digest_of(reloaded))) == 1
        # auto_heal compacted the journal: a third load sees a clean file
        healed = DecisionCache(tmp_path)
        assert healed.semantic_corrupt_entries == 0

    def test_stale_fingerprint_entries_invisible(self, tmp_path):
        cache = DecisionCache(tmp_path)
        line = json.dumps({
            "code": "stale-build", "group": digest_of(cache),
            "lhs": "A(x)", "verdict": TRUE_VERDICT,
        })
        (tmp_path / SEMANTIC_JOURNAL_NAME).write_text(line + "\n")
        reloaded = DecisionCache(tmp_path)
        assert reloaded.semantic_stale_entries == 1
        assert reloaded.semantic_entries(digest_of(reloaded)) == []

    def test_torn_tail_repaired_on_next_append(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put_semantic(digest_of(cache), "A(x)", TRUE_VERDICT)
        journal = tmp_path / SEMANTIC_JOURNAL_NAME
        journal.write_text(journal.read_text() + '{"code": "torn')
        reloaded = DecisionCache(tmp_path)
        reloaded.put_semantic(digest_of(reloaded), "B(x)", TRUE_VERDICT)
        third = DecisionCache(tmp_path)
        texts = [t for t, _ in third.semantic_entries(digest_of(third))]
        assert "A(x)" in texts and "B(x)" in texts

    def test_auto_heal_off_leaves_journal_untouched(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put_semantic(digest_of(cache), "A(x)", TRUE_VERDICT)
        journal = tmp_path / SEMANTIC_JOURNAL_NAME
        damaged = journal.read_text() + "{torn\n"
        journal.write_text(damaged)
        inspector = DecisionCache(tmp_path, auto_heal=False)
        assert inspector.semantic_corrupt_entries == 1
        assert journal.read_text() == damaged

    def test_semantic_groups_listing(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put_semantic("g1", "A(x)", TRUE_VERDICT)
        cache.put_semantic("g1", "B(x)", TRUE_VERDICT)
        cache.put_semantic("g2", "C(x)", TRUE_VERDICT)
        assert cache.semantic_groups() == {"g1": 2, "g2": 1}

    def test_group_digest_distinct_from_decision_space(self):
        cache_digest = semantic_group_digest(GROUP_KEY)
        assert len(cache_digest) == 64
        assert semantic_group_digest(GROUP_KEY) == cache_digest
        assert semantic_group_digest(("other",)) != cache_digest


def run_server(lines, cache_dir, semantic_cache=True):
    reset_process_caches()
    server = ContainmentServer(
        cache_dir=cache_dir, use_cache=True, semantic_cache=semantic_cache
    )
    out = io.StringIO()
    server.serve_pipe(
        io.StringIO("\n".join(json.dumps(l) for l in lines) + "\n"), out
    )
    responses = [json.loads(l) for l in out.getvalue().splitlines()]
    return server, {r["id"]: r for r in responses if r["type"] == "verdict"}


SCHEMA = {"type": "schema", "ref": "s", "tbox": {"cis": [["A", "B"]]}}


class TestWarmRestartHydration:
    def test_fresh_server_answers_near_duplicate_from_disk(self, tmp_path):
        run_server(
            [SCHEMA, {"type": "decide", "id": "seed", "lhs": "A(x); B(x)",
                      "rhs": "B(x)", "schema_ref": "s"}],
            tmp_path,
        )
        # new server instance, new sessions: only the semantic journal can
        # explain an inference hit for a never-before-seen lhs
        server, verdicts = run_server(
            [SCHEMA, {"type": "decide", "id": "dup", "lhs": "A(x)",
                      "rhs": "B(x)", "schema_ref": "s"}],
            tmp_path,
        )
        assert verdicts["dup"]["source"] == "semantic"
        assert verdicts["dup"]["verdict"]["method"] == "semantic.transitive"
        assert server.metrics.counter("decisions_executed") == 0

    def test_corrupt_semantic_journal_degrades_to_computing(self, tmp_path):
        run_server(
            [SCHEMA, {"type": "decide", "id": "seed", "lhs": "A(x); B(x)",
                      "rhs": "B(x)", "schema_ref": "s"}],
            tmp_path,
        )
        (tmp_path / SEMANTIC_JOURNAL_NAME).write_text("garbage\n")
        server, verdicts = run_server(
            [SCHEMA, {"type": "decide", "id": "dup", "lhs": "A(x)",
                      "rhs": "B(x)", "schema_ref": "s"}],
            tmp_path,
        )
        assert verdicts["dup"]["source"] == "computed"
        assert verdicts["dup"]["verdict"]["contained"] is True

    def test_unparseable_persisted_premise_skipped(self, tmp_path):
        server, _ = run_server(
            [SCHEMA, {"type": "decide", "id": "seed", "lhs": "A(x); B(x)",
                      "rhs": "B(x)", "schema_ref": "s"}],
            tmp_path,
        )
        # rewrite the premise's query text to something unparseable while
        # keeping the journal line structurally valid; dropping the CRC
        # field makes it a legacy (pre-checksum) line, so it loads instead
        # of being quarantined and the failure surfaces at hydration
        journal = tmp_path / SEMANTIC_JOURNAL_NAME
        entry = json.loads(journal.read_text())
        entry["lhs"] = "((not a query"
        entry.pop("crc", None)
        journal.write_text(json.dumps(entry) + "\n")
        server, verdicts = run_server(
            [SCHEMA, {"type": "decide", "id": "dup", "lhs": "A(x)",
                      "rhs": "B(x)", "schema_ref": "s"}],
            tmp_path,
        )
        assert verdicts["dup"]["source"] == "computed"
        assert server.metrics.counter("semantic_hydrate_errors") == 1
