"""Shared test plumbing: a per-test wall-clock cap.

Tier-1 must never hang — a deadlocked pool or an unbounded fixpoint should
fail the one test, loudly, instead of wedging CI.  When the ``pytest-timeout``
plugin is available it owns the job (``timeout`` in ``pyproject.toml``);
this conftest provides a dependency-free fallback: a SIGALRM alarm around
each test's call phase, raising ``Failed`` when the budget is gone.

The fallback is a no-op on platforms without ``SIGALRM`` and in worker
threads (the alarm only fires in the main thread); both are fine for the
Linux CI this repo targets.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

TEST_TIMEOUT_S = 120

_HAVE_PYTEST_TIMEOUT = False
try:  # pragma: no cover - depends on the environment
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    pass


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        # claim the ini option pytest-timeout would own, so the `timeout`
        # setting in pyproject.toml is understood either way
        parser.addini(
            "timeout",
            "per-test wall-clock cap in seconds (SIGALRM fallback)",
            default=str(TEST_TIMEOUT_S),
        )


def pytest_collection_modifyitems(config, items):
    # REPRO_FAST=1: a quick tier for laptops/pre-commit — multi-process
    # gateway tests (fork + respawn churn) are the slow outliers
    if os.environ.get("REPRO_FAST") != "1":
        return
    skip = pytest.mark.skip(reason="REPRO_FAST=1 skips multi-process gateway tests")
    skip_smoke = pytest.mark.skip(
        reason="REPRO_FAST=1 skips subprocess benchmark smokes"
    )
    for item in items:
        if "gateway_mp" in item.keywords:
            item.add_marker(skip)
        if "semcache_smoke" in item.keywords:
            item.add_marker(skip_smoke)


def _alarm_usable() -> bool:
    return (
        not _HAVE_PYTEST_TIMEOUT
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if not _alarm_usable():
        yield
        return

    try:
        budget = int(float(item.config.getini("timeout")))
    except (ValueError, TypeError):
        budget = TEST_TIMEOUT_S

    def _expired(signum, frame):
        raise pytest.fail.Exception(
            f"test exceeded the {budget}s wall-clock cap"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(budget)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
