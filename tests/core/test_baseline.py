"""Schema-free containment: expansions and the bounded test."""

from repro.automata.semiautomaton import compile_regex
from repro.core.baseline import (
    contained_no_schema,
    enumeration_exhausted,
    expansions,
    language_is_finite,
    words_of,
)
from repro.graphs.labels import Role
from repro.queries.evaluation import satisfies
from repro.queries.parser import parse_crpq, parse_query
from repro.queries.presets import example_11_q1, example_11_q2


class TestWords:
    def test_finite_language(self):
        words = list(words_of(compile_regex("r.s"), 5))
        assert words == [(Role("r"), Role("s"))]

    def test_star_enumeration(self):
        words = list(words_of(compile_regex("r*"), 3))
        assert len(words) == 4  # ε, r, rr, rrr
        assert () in words

    def test_language_finiteness(self):
        assert language_is_finite(compile_regex("r.s|t"))
        assert not language_is_finite(compile_regex("r*"))
        assert not language_is_finite(compile_regex("r.s+"))
        # the star is unreachable on any accepting path? not here:
        assert not language_is_finite(compile_regex("(r|s)*"))

    def test_enumeration_exhausted_tracks_longest_word(self):
        assert enumeration_exhausted(compile_regex("r.s"), 2)
        assert enumeration_exhausted(compile_regex("r.s"), 5)
        assert not enumeration_exhausted(compile_regex("r.s"), 1)
        # finite but longest word above the bound: NOT exhausted
        assert not enumeration_exhausted(compile_regex("r.r.r.r"), 3)
        assert enumeration_exhausted(compile_regex("r.r.r.r"), 4)
        # infinite languages are never exhausted at any bound
        assert not enumeration_exhausted(compile_regex("r*"), 3)
        assert not enumeration_exhausted(compile_regex("r.s+"), 10)


class TestExpansions:
    def test_expansion_satisfies_query(self):
        q = parse_crpq("A(x), (r.s)(x,y), B(y)")
        for expansion in expansions(q, 4):
            assert satisfies(expansion.graph, q)

    def test_expansion_counts(self):
        q = parse_crpq("r*(x,y)")
        # words ε, r, rr, rrr — the ε-expansion merges x and y
        found = list(expansions(q, 3))
        assert len(found) == 4
        merged = [e for e in found if len(e.graph) == 1]
        assert len(merged) == 1 and merged[0].graph.edge_count() == 0

    def test_epsilon_same_variable(self):
        q = parse_crpq("r*(x,x)")
        found = list(expansions(q, 2))
        assert found  # the ε-word works when source == target

    def test_tests_inside_words(self):
        q = parse_crpq("(r.{Mid}.s)(x,y)")
        graphs = [e.graph for e in expansions(q, 4)]
        assert len(graphs) == 1
        assert any(graphs[0].has_label(v, "Mid") for v in graphs[0].node_list())


class TestContainment:
    def test_reflexive(self):
        q = parse_query("A(x), r(x,y)")
        assert contained_no_schema(q, q).contained

    def test_structural_containment(self):
        lhs = parse_query("A(x), r(x,y), B(y)")
        rhs = parse_query("r(x,y)")
        result = contained_no_schema(lhs, rhs)
        assert result.contained and result.complete

    def test_not_contained_with_countermodel(self):
        lhs = parse_query("r(x,y)")
        rhs = parse_query("A(x), r(x,y)")
        result = contained_no_schema(lhs, rhs)
        assert not result.contained
        assert result.countermodel is not None
        assert satisfies(result.countermodel, lhs.disjuncts[0])

    def test_star_containments(self):
        assert contained_no_schema(parse_query("r(x,y)"), parse_query("r*(x,y)")).contained
        assert not contained_no_schema(parse_query("r*(x,y)"), parse_query("r(x,y)")).contained
        assert contained_no_schema(parse_query("r+(x,y)"), parse_query("r*(x,y)")).contained

    def test_union_lhs(self):
        lhs = parse_query("r(x,y); s(x,y)")
        assert not contained_no_schema(lhs, parse_query("r(x,y)")).contained
        assert contained_no_schema(lhs, parse_query("(r|s)(x,y)")).contained

    def test_example_11_no_schema(self):
        """Example 1.1: q2 ⊆ q1 but q1 ⊄ q2 without the schema."""
        q1, q2 = example_11_q1(), example_11_q2()
        assert contained_no_schema(q2, q1).contained
        refuted = contained_no_schema(q1, q2)
        assert not refuted.contained
        assert refuted.countermodel is not None

    def test_incomplete_flag_for_infinite_languages(self):
        lhs = parse_query("r*(x,y)")
        rhs = parse_query("r*(x,y)")
        result = contained_no_schema(lhs, rhs)
        assert result.contained and not result.complete

    def test_finite_language_beyond_word_bound_is_incomplete(self):
        # r.r.r.r is finite but its only word has length 4: at bound 3 the
        # enumeration yields zero expansions, which must NOT certify the
        # (false) containment r.r.r.r(x,y) ⊆ s(x,y)
        lhs = parse_query("(r.r.r.r)(x,y)")
        rhs = parse_query("s(x,y)")
        truncated = contained_no_schema(lhs, rhs, max_word_length=3)
        assert truncated.contained and not truncated.complete
        assert truncated.expansions_checked == 0
        # at bound 4 the word is enumerated and refutes the containment
        full = contained_no_schema(lhs, rhs, max_word_length=4)
        assert not full.contained and full.complete
        assert full.countermodel is not None
