"""The exhaustive bounded-model oracle."""

from repro.core.bounded import exhaustive_countermodel, extensions_of
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.graph import Graph, single_node_graph
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_query


class TestExtensions:
    def test_counts(self):
        seed = single_node_graph([], node=0)
        # 1 node, 1 label slot, 1 edge slot (self-loop): 4 extensions
        found = list(extensions_of(seed, 0, ["A"], ["r"]))
        assert len(found) == 4

    def test_seed_preserved(self):
        seed = single_node_graph(["A"], node=0)
        for g in extensions_of(seed, 1, ["A", "B"], ["r"]):
            assert seed.is_subgraph_of(g)

    def test_fresh_nodes_added(self):
        seed = single_node_graph([], node=0)
        sizes = {len(g) for g in extensions_of(seed, 1, [], [])}
        assert sizes == {2}


class TestOracle:
    def test_finds_simple_countermodel(self):
        tbox = normalize(TBox.of([("A", "B | C")]))
        seed = single_node_graph(["A"], node=0)
        model = exhaustive_countermodel(tbox, parse_query("B(x)"), seed, 0)
        assert model is not None
        assert tbox.satisfied_by(model)
        assert not satisfies_union(model, parse_query("B(x)"))

    def test_certifies_entailment(self):
        tbox = normalize(TBox.of([("A", "exists r.top")]))
        seed = single_node_graph(["A"], node=0)
        assert exhaustive_countermodel(tbox, parse_query("r(x,y)"), seed, 1) is None

    def test_needs_extra_node(self):
        tbox = normalize(TBox.of([("A", "exists r.B"), ("A", "!B"), ("B", "!A")]))
        seed = single_node_graph(["A"], node=0)
        assert exhaustive_countermodel(tbox, parse_query("Zz(x)"), seed, 0) is None
        assert exhaustive_countermodel(tbox, parse_query("Zz(x)"), seed, 1) is not None
