"""Section 4: the coil and its three key properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coil import (
    coil,
    extend_path,
    path_end,
    path_length,
    path_start,
    paths_from,
    paths_up_to,
    suffix,
    unravel,
)
from repro.graphs.generators import cycle_graph, path_graph, random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.homomorphism import find_homomorphism, is_homomorphism
from repro.graphs.operations import connected_components, reachable_from


class TestPaths:
    def test_zero_length_paths(self):
        g = path_graph(2)
        zero = [p for p in paths_up_to(g, 0)]
        assert len(zero) == 3
        assert all(path_length(p) == 0 for p in zero)

    def test_counts_on_path(self):
        g = path_graph(3)  # 4 nodes, 3 edges
        all_paths = list(paths_up_to(g, 2))
        # lengths 0: 4, length 1: 3, length 2: 2
        assert len(all_paths) == 9

    def test_paths_not_necessarily_simple(self):
        g = cycle_graph(2)
        long_paths = [p for p in paths_up_to(g, 4) if path_length(p) == 4]
        assert long_paths  # wraps around the 2-cycle revisiting nodes

    def test_paths_from(self):
        g = path_graph(3)
        from_zero = list(paths_from(g, 2, 0))
        assert all(path_start(p) == 0 for p in from_zero)
        assert len(from_zero) == 3

    def test_suffix(self):
        p = (0,)
        p = extend_path(p, "r", 1)
        p = extend_path(p, "r", 2)
        p = extend_path(p, "r", 3)
        assert suffix(p, 2) == (1, ("r", 2), ("r", 3))
        assert suffix(p, 5) == p
        assert suffix(p, 0) == (3,)
        assert path_end(suffix(p, 2)) == 3


class TestUnravel:
    def test_tree_shape(self):
        g = cycle_graph(3, "r", ["A"])
        tree = unravel(g, 4, 0)
        # a deterministic cycle unravels into a path of length 4
        assert len(tree) == 5
        assert tree.edge_count() == 4

    def test_labels_inherited(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["B"])
        g.add_edge(0, "r", 1)
        tree = unravel(g, 1, 0)
        leaf = [v for v in tree.node_list() if v != (0,)][0]
        assert tree.labels_of(leaf) == {"B"}

    def test_branching(self):
        g = Graph()
        g.add_edge(0, "r", 1)
        g.add_edge(0, "s", 2)
        tree = unravel(g, 1, 0)
        assert len(tree) == 3


COIL_GRAPHS = [
    cycle_graph(3, "r", ["A"]),
    cycle_graph(1, "r"),
    path_graph(3, "r", ["B"]),
    random_connected_graph(4, 2, ["A"], ["r", "s"], seed=2),
    random_connected_graph(5, 1, ["A", "B"], ["r"], seed=7),
]


class TestCoilProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(range(len(COIL_GRAPHS))), st.integers(1, 3))
    def test_property1_surjective_homomorphism(self, index, n):
        """h_G : Coil(G,n) → G is a surjective homomorphism."""
        g = COIL_GRAPHS[index]
        c = coil(g, n)
        mapping = {v: c.h(v) for v in c.graph.node_list()}
        assert is_homomorphism(c.graph, g, mapping)
        assert set(mapping.values()) == set(g.node_list())

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(range(len(COIL_GRAPHS))), st.integers(2, 3))
    def test_property2_local_tree_neighbourhoods(self, index, n):
        """the ≤(n−1)-out-neighbourhood of a coil node is a tree."""
        g = COIL_GRAPHS[index]
        c = coil(g, n)
        for node in list(c.graph.node_list())[:6]:
            ball = c.graph.subgraph(reachable_from(c.graph, node, max_steps=n - 1))
            # a tree: connected with |E| = |V| - 1
            assert len(connected_components(ball)) == 1
            assert ball.edge_count() == len(ball) - 1

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from(range(len(COIL_GRAPHS))))
    def test_property3_few_levels_map_to_unravel(self, index):
        """a connected subgraph visiting k ≤ n levels maps into an unravelling."""
        g = COIL_GRAPHS[index]
        n = 3
        c = coil(g, n)
        # take the subgraph on levels {1, 2} — visits 2 ≤ n levels
        nodes = [v for v in c.graph.node_list() if c.node_level(v) in (1, 2)]
        sub = c.graph.subgraph(nodes)
        for component in connected_components(sub):
            piece = sub.subgraph(component)
            mapped = any(
                find_homomorphism(piece, unravel(g, 1, v)) is not None
                for v in g.node_list()
            )
            assert mapped

    def test_levels(self):
        c = coil(cycle_graph(3), 2)
        levels = {c.node_level(v) for v in c.graph.node_list()}
        assert levels == {0, 1, 2}

    def test_coil_size(self):
        g = cycle_graph(3)
        c = coil(g, 2)
        # paths of length ≤2 in a 3-cycle: 3+3+3 = 9; × 3 levels
        assert len(c.graph) == 27

    def test_invalid_n(self):
        import pytest

        with pytest.raises(ValueError):
            coil(cycle_graph(2), 0)
