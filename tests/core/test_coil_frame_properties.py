"""Property tests for the frame-level coil (Lemma 4.3's mechanism).

The coiled frame must (a) be a valid frame, (b) be *locally isomorphic* to
the original — every component/connector isomorphism class preserved — and
(c) represent a graph that maps homomorphically onto the original's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frames import ConcreteFrame, coil_frame
from repro.graphs.graph import Graph, PointedGraph, single_node_graph
from repro.graphs.homomorphism import canonical_key, maps_into
from repro.graphs.labels import Role


def random_frame(seed: int, n_components: int) -> ConcreteFrame:
    import random

    rng = random.Random(seed)
    frame = ConcreteFrame({})
    for i in range(n_components):
        g = Graph()
        g.add_node(("g", i, 0), [rng.choice(["A", "B"])])
        if rng.random() < 0.5:
            g.add_node(("g", i, 1), [rng.choice(["A", "B"])])
            g.add_edge(("g", i, 0), rng.choice(["r", "s"]), ("g", i, 1))
        frame.add_component(i, PointedGraph(g, ("g", i, 0)))
    # wire a random connected-ish skeleton without self-loops
    for i in range(n_components):
        j = rng.randrange(n_components)
        if i == j:
            j = (j + 1) % n_components
        if i == j:
            continue
        anchor = ("g", i, 0)
        role = Role(rng.choice(["r", "s"]), rng.random() < 0.3)
        if not any(
            e.source == i and e.anchor == anchor and e.target == j for e in frame.edges
        ):
            frame.add_edge(i, anchor, role, j)
    frame.validate()
    return frame


def component_classes(frame: ConcreteFrame) -> set:
    return {canonical_key(p.graph) for p in frame.components.values()}


def connector_classes(frame: ConcreteFrame) -> set:
    return {
        canonical_key(connector.graph)
        for _f, _a, connector in frame.connectors(include_trivial=False)
    }


class TestCoilFrameProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 4), st.integers(2, 3))
    def test_local_isomorphism(self, seed, n_components, recall):
        frame = random_frame(seed, n_components)
        coiled = coil_frame(frame, recall)
        coiled.validate()
        # component classes are preserved exactly
        assert component_classes(coiled) == component_classes(frame)
        # connector classes of the coil are among the original's (an anchor
        # with no outgoing skeleton edges in some copy yields no connector)
        assert connector_classes(coiled) <= connector_classes(frame)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 3))
    def test_represented_graph_maps_onto_original(self, seed, n_components):
        frame = random_frame(seed, n_components)
        coiled = coil_frame(frame, 2)
        original = frame.represented_graph()
        rebuilt = coiled.represented_graph()
        assert maps_into(rebuilt, original)
