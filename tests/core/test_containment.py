"""The public is_contained API: dispatch, verdicts, verified countermodels."""

import pytest

from repro.core.containment import ContainmentOptions, is_contained
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox, satisfies_tbox
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_query


class TestDispatch:
    def test_no_schema_uses_baseline(self):
        result = is_contained("r(x,y)", "r*(x,y)")
        assert result.contained and result.method == "baseline"

    def test_no_participation_uses_sparse(self):
        tbox = TBox.of([("A", "forall r.B")])
        result = is_contained("A(x), r(x,y)", "B(y)", tbox)
        assert result.method == "sparse"
        assert result.contained

    def test_participation_uses_direct(self):
        tbox = TBox.of([("A", "exists r.B")])
        result = is_contained("A(x)", "r(x,y), B(y)", tbox)
        assert result.method == "direct"
        assert result.contained

    def test_explicit_method_override(self):
        tbox = TBox.of([("A", "exists r.B")])
        result = is_contained("A(x)", "C(x)", tbox, method="reduction")
        assert result.method == "reduction"
        assert not result.contained

    def test_schema_forces_witness_label(self):
        # A ⊑ ∃r.B puts a B node in every model containing an A node,
        # so even the "unrelated" Boolean query B(x) is entailed
        tbox = TBox.of([("A", "exists r.B")])
        assert is_contained("A(x)", "B(x)", tbox).contained
        assert is_contained("A(x)", "B(x)", tbox, method="reduction").contained

    def test_string_queries_accepted(self):
        assert is_contained("A(x), B(x)", "A(x)").contained

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            is_contained("A(x)", "B(x)", method="zz")


class TestVerdicts:
    def test_countermodel_verified(self):
        tbox = TBox.of([("A", "exists r.B")])
        result = is_contained("A(x)", "C(x)", tbox)
        assert not result.contained
        model = result.countermodel
        assert satisfies_tbox(model, tbox)
        assert satisfies_union(model, parse_query("A(x)"))
        assert not satisfies_union(model, parse_query("C(x)"))

    def test_schema_flips_answer(self):
        """The headline phenomenon: containment holds only modulo the schema."""
        lhs = "A(x), r(x,y)"
        rhs = "r(x,y), B(y)"
        assert not is_contained(lhs, rhs).contained
        assert is_contained(lhs, rhs, TBox.of([("A", "forall r.B")])).contained

    def test_union_lhs_all_disjuncts(self):
        tbox = TBox.of([("A", "B")])
        assert is_contained("A(x); B(x)", "B(x)", tbox).contained
        assert not is_contained("A(x); C(x)", "B(x)", tbox).contained

    def test_unsatisfiable_lhs_contained_in_anything(self):
        tbox = TBox.of([("A & B", "bottom")])
        result = is_contained("A(x), B(x)", "Zz(w)", tbox)
        assert result.contained

    def test_open_combination_flagged(self):
        # full ALCQI with participation: the paper leaves it open
        tbox = TBox.of([("A", ">=2 r.B"), ("B", "exists s-.A")])
        result = is_contained("A(x)", "C(x)", tbox)
        assert not result.supported_by_theory
        # the direct engine still produces a sound verdict
        assert not result.contained

    def test_supported_combinations_flagged(self):
        alcq = TBox.of([("A", ">=2 r.B")])
        result = is_contained("A(x), r(x,y)", "B(x)", alcq)  # simple queries
        assert result.supported_by_theory

    def test_two_way_queries(self):
        tbox = TBox.of([("B", "exists r-.A")])
        # every B has an incoming r from an A: B(x) ⊆ r-(x,y),A(y)
        result = is_contained("B(x)", "r-(x,y), A(y)", tbox)
        assert result.contained

    def test_not_contained_two_way(self):
        tbox = TBox.of([("B", "exists r-.A")])
        result = is_contained("B(x)", "r(x,y), A(y)", tbox)
        assert not result.contained
