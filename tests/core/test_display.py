"""Internal-label stripping for user-facing countermodels."""

from repro.core.display import is_internal_label, strip_internal_labels
from repro.graphs.graph import Graph


class TestDisplay:
    def test_prefix_classification(self):
        assert is_internal_label("Nz_3")
        assert is_internal_label("Cp_12")
        assert is_internal_label("Cnt_0_r_pB")
        assert is_internal_label("Cntg1_0_r_pB")
        assert is_internal_label("Crole_r")
        assert not is_internal_label("Customer")
        assert not is_internal_label("NzLike")  # needs the underscore

    def test_strip(self):
        g = Graph()
        g.add_node(0, ["A", "Nz_0", "Cp_1"])
        g.add_node(1, ["Cnt_0_r_pB"])
        g.add_edge(0, "r", 1)
        cleaned = strip_internal_labels(g)
        assert cleaned.labels_of(0) == {"A"}
        assert cleaned.labels_of(1) == frozenset()
        assert cleaned.has_edge(0, "r", 1)
        # original untouched
        assert g.has_label(0, "Nz_0")

    def test_containment_countermodels_are_clean(self):
        from repro.core.containment import is_contained
        from repro.dl.tbox import TBox

        result = is_contained("A(x)", "C(x)", TBox.of([("A", "exists r.B")]))
        assert not result.contained
        for node in result.countermodel.node_list():
            assert not any(
                is_internal_label(name) for name in result.countermodel.labels_of(node)
            )

    def test_entailment_countermodels_are_clean(self):
        from repro.core.entailment import finitely_entails
        from repro.dl.tbox import TBox
        from repro.graphs.graph import single_node_graph
        from repro.queries.parser import parse_query

        result = finitely_entails(
            single_node_graph(["A"]), TBox.of([("A", "exists r.A")]), parse_query("B(x)")
        )
        assert not result.entailed
        for node in result.countermodel.node_list():
            assert not any(
                is_internal_label(name) for name in result.countermodel.labels_of(node)
            )
