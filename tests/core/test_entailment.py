"""Finite entailment API."""

from repro.core.entailment import finitely_entails, realizable_type, union_has_complements
from repro.core.search import SearchLimits
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.graph import Graph, single_node_graph
from repro.graphs.types import Type
from repro.queries.parser import parse_query


class TestFinitelyEntails:
    def test_not_entailed_with_verified_countermodel(self):
        result = finitely_entails(
            single_node_graph(["A"]), TBox.of([("A", "exists r.A")]), parse_query("B(x)")
        )
        assert not result.entailed
        assert result.complete
        assert result.countermodel is not None

    def test_entailed(self):
        result = finitely_entails(
            single_node_graph(["A"]), TBox.of([("A", "exists r.B")]), parse_query("B(x)")
        )
        assert result.entailed

    def test_seed_match_shortcut(self):
        g = single_node_graph(["A"])
        result = finitely_entails(g, TBox.empty(), parse_query("A(x)"))
        assert result.entailed and result.complete and result.method == "seed-match"

    def test_seed_match_not_shortcut_for_complements(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1)
        # ¬A matches the seed, but an extension can grant A everywhere
        result = finitely_entails(g, TBox.empty(), parse_query("!A(x)"))
        assert not result.entailed

    def test_finite_vs_unrestricted_divergence(self):
        """The classic finite-model effect: r-functional cycles.

        T forces every A-node to an r-successor in A with ≤1 r-predecessor
        each; over finite graphs the chase must close a cycle, which is
        still fine here, so Q = r(x,x)-free models exist only via cycles
        longer than 1: avoiding r(x,x) is possible finitely.
        """
        tbox = TBox.of([("A", "exists r.A"), ("A", "forall r.A")])
        result = finitely_entails(single_node_graph(["A"]), tbox, parse_query("r(x,x)"))
        # a 2-cycle of A-nodes avoids self-loops
        assert not result.entailed

    def test_accepts_normalized_tbox_and_crpq(self):
        from repro.queries.parser import parse_crpq

        tbox = normalize(TBox.of([("A", "B")]))
        result = finitely_entails(single_node_graph(["A"]), tbox, parse_crpq("B(x)"))
        assert result.entailed

    def test_union_has_complements(self):
        assert union_has_complements(parse_query("!A(x)"))
        assert union_has_complements(parse_query("({!A}.r)(x,y)"))
        assert not union_has_complements(parse_query("A(x), r(x,y)"))


class TestRealizableType:
    def test_simple_realization(self):
        outcome = realizable_type(
            Type.of("A", "!B"), normalize(TBox.empty()), parse_query("C(x)")
        )
        assert outcome.found
        model = outcome.countermodel
        assert model.has_label(("tau", 0), "A")
        assert not model.has_label(("tau", 0), "B")

    def test_unrealizable_by_clause(self):
        tbox = normalize(TBox.of([("A", "B")]))
        outcome = realizable_type(
            Type.of("A", "!B"), tbox, parse_query("Zz(x)"), type_signature=["A", "B"]
        )
        assert not outcome.found and outcome.exhausted

    def test_unrealizable_by_query(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        outcome = realizable_type(
            Type.of("A"), tbox, parse_query("r(x,y), B(y)")
        )
        assert not outcome.found and outcome.exhausted

    def test_respects_allowed_types(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        allowed = [Type.of("A", "!B"), Type.of("!A", "B")]
        outcome = realizable_type(
            Type.of("A", "!B"), tbox, parse_query("Zz(x)"),
            allowed_types=allowed, type_signature=["A", "B"],
        )
        assert outcome.found
