"""Query equivalence and schema-aware minimization."""

import pytest

from repro.core.equivalence import are_equivalent, minimize
from repro.dl.pg_schema import figure1_schema
from repro.dl.tbox import TBox
from repro.queries.parser import parse_crpq
from repro.queries.presets import example_11_q1, example_11_q2


class TestEquivalence:
    def test_syntactic_variants(self):
        assert are_equivalent("A(x), r(x,y)", "r(x,y), A(x)").equivalent

    def test_inequivalent_certain(self):
        result = are_equivalent("r(x,y)", "A(x), r(x,y)")
        assert not result.equivalent
        assert result.complete  # refutation direction is certain

    def test_example_11_modulo_schema(self):
        """q₁ ≡_S q₂ — the paper's two containments combined."""
        schema = figure1_schema()
        assert not are_equivalent(example_11_q1(), example_11_q2()).equivalent
        assert are_equivalent(example_11_q1(), example_11_q2(), schema).equivalent

    def test_schema_makes_label_redundant(self):
        tbox = TBox.of([("A", "forall r.B")])
        assert are_equivalent("A(x), r(x,y)", "A(x), r(x,y), B(y)", tbox).equivalent
        assert not are_equivalent("A(x), r(x,y)", "A(x), r(x,y), B(y)").equivalent


class TestMinimization:
    def test_redundant_label_dropped(self):
        tbox = TBox.of([("A", "forall r.B")])
        result = minimize("A(x), r(x,y), B(y)", tbox)
        assert len(result.dropped) == 1
        assert "B" in str(result.dropped[0])
        assert result.minimized.size() == 2

    def test_nothing_redundant_without_schema(self):
        result = minimize("A(x), r(x,y), B(y)")
        assert not result.dropped

    def test_classical_cq_minimization(self):
        # r(x,y) ∧ r(x,z): the second atom folds into the first (Boolean)
        result = minimize("r(x,y), r(x,z)")
        assert len(result.dropped) == 1
        assert result.minimized.size() == 1

    def test_connectivity_preserved(self):
        tbox = TBox.of([("A", "forall r.A")])
        result = minimize("A(x), r(x,y), r(y,z)", tbox)
        assert result.minimized.is_connected()

    def test_union_rejected(self):
        with pytest.raises(ValueError):
            minimize("A(x); B(x)")

    def test_subsumed_generalization(self):
        tbox = TBox.of([("PremCC", "CredCard")])
        result = minimize("PremCC(x), CredCard(x), earns(x,y)", tbox)
        assert any("CredCard" in str(a) for a in result.dropped)
        assert not any(
            "CredCard" in str(a) for a in result.minimized.concept_atoms
        )
