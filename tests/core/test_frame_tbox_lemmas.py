"""Lemma 5.2-style invariants: frames satisfying a TBox represent graphs
that satisfy it.

These are checked constructively: build alternating frames whose components
satisfy the directional TBoxes and whose connectors provide the opposite
witnesses, then model-check the represented graph against the full TBox.
"""

from repro.core.frames import ConcreteFrame
from repro.dl.fragments import backward_projection, forward_projection
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.graph import Graph, PointedGraph, single_node_graph
from repro.graphs.labels import Role


def alternating_frame_for_inverse_tbox():
    """T = {B ⊑ ∃r⁻.A, A ⊑ ∀r.B}: a forward A-component provides nothing
    internally; the backward witness for B comes through a connector."""
    tbox = normalize(TBox.of([("B", "exists r-.A"), ("A", "forall r.B")], name="alci"))
    # forward component: a single A node (Cdir); backward: a single B node
    fwd = Graph()
    fwd.add_node(("f", 0), ["A", "Cdir"])
    bwd = Graph()
    bwd.add_node(("b", 0), ["B"])
    frame = ConcreteFrame({})
    frame.add_component("fa", PointedGraph(fwd, ("f", 0)))
    frame.add_component("fb", PointedGraph(bwd, ("b", 0)))
    # B's backward witness: an incoming r-edge from the A node.  In frame
    # terms: an edge anchored at the backward node with inverse role r⁻
    frame.add_edge("fb", ("b", 0), Role("r", True), "fa")
    frame.validate()
    return tbox, frame


class TestLemma52:
    def test_represented_graph_satisfies_tbox(self):
        tbox, frame = alternating_frame_for_inverse_tbox()
        graph = frame.represented_graph()
        # normalization markers are placed by `complete`; the completed
        # graph satisfies the normalized TBox iff the raw graph satisfies
        # the original one (conservativity)
        assert tbox.satisfied_by(tbox.complete(graph))

    def test_components_satisfy_their_projections(self):
        tbox, frame = alternating_frame_for_inverse_tbox()
        t_fwd = forward_projection(tbox)
        t_bwd = backward_projection(tbox)
        fwd_graph = frame.components["fa"].graph
        bwd_graph = frame.components["fb"].graph
        assert t_fwd.satisfied_by(t_fwd.complete(fwd_graph))
        assert t_bwd.clauses == t_fwd.clauses  # shared propositional part
        # the backward component alone does NOT satisfy the full TBox...
        assert not tbox.satisfied_by(tbox.complete(bwd_graph))
        # ...its obligation is discharged by the connector
        _f, _anchor, connector = next(iter(frame.connectors()))
        completed = t_bwd.complete(connector.graph)
        assert all(
            ci.holds_at(completed, connector.point) for ci in t_bwd.all_cis()
        )


class TestDirectionalProjectionSoundness:
    def test_fwd_plus_bwd_cover_original(self):
        """Every CI of T appears (possibly flipped) in T→ or T←."""
        tbox = normalize(TBox.of([
            ("A", "exists r.B"),
            ("B", "exists s-.C"),
            ("A", "forall r.D"),
            ("D", "forall s-.A"),
        ]))
        fwd = forward_projection(tbox)
        bwd = backward_projection(tbox)
        assert set(tbox.at_leasts) == set(fwd.at_leasts) | set(bwd.at_leasts)
        # universals: each original or its flip appears on both sides
        for ci in tbox.universals:
            assert ci in fwd.universals or ci.flipped() in fwd.universals
            assert ci in bwd.universals or ci.flipped() in bwd.universals
