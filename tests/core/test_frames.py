"""Concrete frames, represented graphs, connectors, and the Lemma 4.3
restructuring."""

import pytest

from repro.core.frames import (
    AbstractComponent,
    AbstractFrame,
    AbstractFrameEdge,
    ConcreteFrame,
    coil_frame,
    undirected_frame_path_span,
    unravel_frame,
)
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph, PointedGraph, single_node_graph
from repro.graphs.labels import Role
from repro.graphs.types import Type
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_query


def two_component_frame():
    """f0 --(a0, r)--> f1 with single-edge components."""
    g0 = Graph()
    g0.add_node(("g0", 0), ["A"])
    g0.add_node(("g0", 1), ["B"])
    g0.add_edge(("g0", 0), "r", ("g0", 1))
    g1 = Graph()
    g1.add_node(("g1", 0), ["C"])
    frame = ConcreteFrame({})
    frame.add_component("f0", PointedGraph(g0, ("g0", 0)))
    frame.add_component("f1", PointedGraph(g1, ("g1", 0)))
    frame.add_edge("f0", ("g0", 1), Role("r"), "f1")
    frame.validate()
    return frame


class TestConcreteFrame:
    def test_represented_graph(self):
        frame = two_component_frame()
        g = frame.represented_graph()
        assert len(g) == 3
        assert g.has_edge(("g0", 1), "r", ("g1", 0))
        assert frame.frame_edge_set() == {(("g0", 1), "r", ("g1", 0))}

    def test_inverse_frame_edge(self):
        frame = two_component_frame()
        frame.add_edge("f0", ("g0", 0), Role("s", True), "f1")
        g = frame.represented_graph()
        # an s⁻-labelled frame edge is an s-edge INTO the anchor
        assert g.has_edge(("g1", 0), "s", ("g0", 0))

    def test_connector(self):
        frame = two_component_frame()
        connector = frame.connector("f0", ("g0", 1))
        assert len(connector.graph) == 2
        assert connector.point == ("g0", 1)
        assert connector.graph.has_edge(("g0", 1), "r", ("g1", 0))

    def test_connectors_iteration(self):
        frame = two_component_frame()
        anchored = list(frame.connectors())
        assert len(anchored) == 1
        with_trivial = list(frame.connectors(include_trivial=True))
        assert len(with_trivial) == 3

    def test_validation_rejects_self_loop(self):
        g = single_node_graph(["A"], node=("g", 0))
        frame = ConcreteFrame({"f": PointedGraph(g, ("g", 0))})
        frame.add_edge("f", ("g", 0), Role("r"), "f")
        with pytest.raises(ValueError):
            frame.validate()

    def test_validation_rejects_shared_domains(self):
        g = single_node_graph(["A"], node=0)
        frame = ConcreteFrame({"f": PointedGraph(g, 0), "e": PointedGraph(g, 0)})
        with pytest.raises(ValueError):
            frame.validate()

    def test_is_tree(self):
        assert two_component_frame().is_tree()

    def test_skeleton_roundtrip(self):
        frame = two_component_frame()
        skeleton, legend = frame.skeleton()
        assert len(skeleton) == 2
        assert len(legend) == 1
        assert list(legend.values())[0] == (("g0", 1), Role("r"))


class TestRestructuring:
    def cyclic_frame(self):
        """A frame whose skeleton is a 2-cycle."""
        g0 = single_node_graph(["A"], node=("g0", 0))
        g1 = single_node_graph(["B"], node=("g1", 0))
        frame = ConcreteFrame({})
        frame.add_component("f0", PointedGraph(g0, ("g0", 0)))
        frame.add_component("f1", PointedGraph(g1, ("g1", 0)))
        frame.add_edge("f0", ("g0", 0), Role("r"), "f1")
        frame.add_edge("f1", ("g1", 0), Role("r"), "f0")
        return frame

    def test_coil_frame_valid_and_larger(self):
        frame = self.cyclic_frame()
        coiled = coil_frame(frame, 3)
        coiled.validate()
        assert len(coiled.components) > len(frame.components)

    def test_coil_frame_locally_isomorphic(self):
        """components/connectors of F_n are copies of those of F."""
        frame = self.cyclic_frame()
        coiled = coil_frame(frame, 2)
        original_labels = {
            frozenset(p.graph.labels_of(v) for v in p.graph.node_list())
            for p in frame.components.values()
        }
        coiled_labels = {
            frozenset(p.graph.labels_of(v) for v in p.graph.node_list())
            for p in coiled.components.values()
        }
        assert coiled_labels == original_labels

    def test_coil_breaks_short_cycles(self):
        # the 2-cycle skeleton represents r-cycles; Coil with n=3 makes the
        # girth larger than 2 so the query r.r(x,x) is no longer matched
        frame = self.cyclic_frame()
        query = parse_query("(r.r)(x,x)")
        assert satisfies_union(frame.represented_graph(), query)
        coiled = coil_frame(frame, 3)
        assert not satisfies_union(coiled.represented_graph(), query)

    def test_unravel_frame_is_tree(self):
        frame = self.cyclic_frame()
        tree = unravel_frame(frame, 3, "f0")
        tree.validate()
        assert tree.is_tree()


class TestSpans:
    def test_span_computation(self):
        assert undirected_frame_path_span([1, 1, -1]) == 2
        assert undirected_frame_path_span([1, -1, 1, -1]) == 1
        assert undirected_frame_path_span([]) == 0
        assert undirected_frame_path_span([-1, -1]) == 2


class TestAbstractFrame:
    def test_component_requires_tau_in_thetas(self):
        tau = Type.of("A")
        AbstractComponent(tau, None, frozenset({tau}), None)
        with pytest.raises(ValueError):
            AbstractComponent(tau, None, frozenset({Type.of("B")}), None)

    def test_realizes(self):
        comp = AbstractComponent(Type.of("A", "!B"), None, frozenset({Type.of("A", "!B")}), None)
        frame = AbstractFrame({"f": comp})
        assert frame.realizes(Type.of("A"))
        assert not frame.realizes(Type.of("B"))

    def test_connector_graph_materializes_types(self):
        a, b = Type.of("A"), Type.of("B")
        frame = AbstractFrame(
            {
                "f": AbstractComponent(a, None, frozenset({a}), None),
                "e": AbstractComponent(b, None, frozenset({b}), None),
            },
            edges=[AbstractFrameEdge("f", a, Role("r"), "e")],
        )
        connectors = frame.connector_graph("f")
        assert a in connectors
        star = connectors[a]
        assert star.graph.has_label(star.point, "A")
        leaves = [v for v in star.graph.node_list() if v != star.point]
        assert len(leaves) == 1 and star.graph.has_label(leaves[0], "B")

    def test_represent(self):
        a, b = Type.of("A"), Type.of("B")
        frame = AbstractFrame(
            {
                "f": AbstractComponent(a, None, frozenset({a}), None),
                "e": AbstractComponent(b, None, frozenset({b}), None),
            },
            edges=[AbstractFrameEdge("f", a, Role("r"), "e")],
        )
        witnesses = {
            "f": PointedGraph(single_node_graph(["A"], node=0), 0),
            "e": PointedGraph(single_node_graph(["B"], node=0), 0),
        }
        concrete = frame.represent(witnesses)
        concrete.validate()
        represented = concrete.represented_graph()
        assert len(represented) == 2
        assert any(r == "r" for _a, r, _b in represented.edges())
