"""CI smoke for the incremental-chase A/B benchmark (E17).

Runs ``benchmarks/bench_search_incremental.py --quick`` — the sub-second
E7 sweep with the incremental layer forced on and off — and fails if any
verdict diverges, so tier-1 catches an on/off split without running the
full benchmark suite.
"""

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_search_incremental.py"


def test_quick_ab_smoke_verdicts_agree():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"incremental A/B smoke failed (exit {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "VERDICT DIVERGENCE" not in proc.stderr
