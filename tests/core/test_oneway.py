"""Section 5: the one-way fixpoint procedure over alternating frames."""

import pytest

from repro.core.oneway import ProcedureInfeasible, realizable_refuting_oneway
from repro.core.search import SearchLimits
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.types import Type
from repro.queries.parser import parse_query
from repro.queries.presets import example_36_factorization, example_36_query

LIMITS = SearchLimits(max_nodes=4, max_steps=5000)


def decide(tau, cis, query=None, fact=None):
    tbox = normalize(TBox.of(cis))
    q = query if query is not None else example_36_query()
    f = fact if fact is not None else example_36_factorization()
    return realizable_refuting_oneway(tau, tbox, q, factorization=f, limits=LIMITS)


class TestExample36:
    def test_empty_tbox_realizable(self):
        assert decide(Type.of("A"), []).realizable

    def test_forced_edge_unrealizable(self):
        # A ⊑ ∃r.B makes every A-node match Q = A·r⁺·B
        assert not decide(Type.of("A"), [("A", "exists r.B")]).realizable

    def test_target_type_still_realizable(self):
        assert decide(Type.of("B"), [("A", "exists r.B")]).realizable

    def test_two_step_chain_unrealizable(self):
        cis = [("A", "exists r.M"), ("M", "exists r.B")]
        assert not decide(Type.of("A"), cis).realizable

    def test_open_chain_realizable(self):
        assert decide(Type.of("A"), [("A", "exists r.M")]).realizable

    def test_inverse_participation(self):
        # ALCI: every B has an incoming r-edge from an A
        cis = [("B", "exists r-.A")]
        assert not decide(Type.of("B"), cis).realizable
        assert decide(Type.of("A"), cis).realizable

    def test_alternating_obligations(self):
        # forward and backward participation interleaved
        cis = [("A", "exists r.M"), ("M", "exists r-.A")]
        result = decide(Type.of("A"), cis)
        assert result.realizable  # M's backward witness is the A itself (or a copy)

    def test_universal_blocks(self):
        # every r-successor of an A is B, and A needs an r-successor:
        # then A·r⁺·B matches unavoidably
        cis = [("A", "exists r.top"), ("A", "forall r.B")]
        assert not decide(Type.of("A"), cis).realizable


class TestGuards:
    def test_counting_rejected(self):
        tbox = normalize(TBox.of([("A", ">=2 r.B")]))
        with pytest.raises(ValueError):
            realizable_refuting_oneway(
                Type.of("A"), tbox, example_36_query(),
                factorization=example_36_factorization(), limits=LIMITS,
            )

    def test_two_way_query_rejected(self):
        tbox = normalize(TBox.empty())
        with pytest.raises(ValueError):
            realizable_refuting_oneway(
                Type.of("A"), tbox, parse_query("r-(x,y)"), limits=LIMITS
            )

    def test_type_space_guard(self):
        tbox = normalize(TBox.empty())
        with pytest.raises(ProcedureInfeasible):
            realizable_refuting_oneway(
                Type.of("A"), tbox, example_36_query(),
                factorization=example_36_factorization(),
                limits=LIMITS, max_types=4,
            )


class TestDiagnostics:
    def test_iteration_history(self):
        result = decide(Type.of("A"), [("A", "exists r.B")])
        assert result.iterations >= 1
        assert len(result.type_counts) == result.iterations + 1
        # greatest fixpoint: counts never increase
        assert all(a >= b for a, b in zip(result.type_counts, result.type_counts[1:]))

    def test_gamma_reported(self):
        result = decide(Type.of("A"), [])
        assert "Cdir" in result.gamma and "A" in result.gamma


class TestSynthesis:
    def test_synthesized_countermodel_verified(self):
        from repro.core.oneway import synthesize_countermodel_oneway
        from repro.queries.evaluation import satisfies_union

        tbox = normalize(TBox.of([("B", "exists r-.A")]))
        fact = example_36_factorization()
        model = synthesize_countermodel_oneway(
            Type.of("A"), tbox, example_36_query(), factorization=fact, limits=LIMITS
        )
        assert model is not None
        assert tbox.satisfied_by(model)
        assert not satisfies_union(model, example_36_query())
        assert any(Type.of("A").holds_at(model, v) for v in model.node_list())

    def test_synthesis_none_when_unrealizable(self):
        from repro.core.oneway import synthesize_countermodel_oneway

        tbox = normalize(TBox.of([("A", "exists r.B")]))
        model = synthesize_countermodel_oneway(
            Type.of("A"), tbox, example_36_query(),
            factorization=example_36_factorization(), limits=LIMITS,
        )
        assert model is None

    def test_synthesis_alternating_obligations(self):
        from repro.core.oneway import synthesize_countermodel_oneway
        from repro.queries.evaluation import satisfies_union

        tbox = normalize(TBox.of([("A", "exists r.M"), ("M", "exists r-.A")]))
        model = synthesize_countermodel_oneway(
            Type.of("A"), tbox, example_36_query(),
            factorization=example_36_factorization(), limits=LIMITS,
        )
        assert model is not None
        assert tbox.satisfied_by(model)
        assert not satisfies_union(model, example_36_query())
