"""Decision records and logs."""

import json

from repro.core.records import DecisionLog, decide
from repro.dl.tbox import TBox


class TestDecide:
    def test_record_fields(self):
        record = decide("A(x), r(x,y)", "r(x,y)", TBox.of([("A", "B")], name="t"))
        assert record.contained
        assert record.schema_name == "t"
        assert record.seconds >= 0
        assert "CONTAINED" in record.verdict

    def test_countermodel_serialized(self):
        record = decide("r(x,y)", "A(x)")
        assert not record.contained
        assert record.countermodel is not None
        data = json.loads(record.to_json())
        assert data["countermodel"]["edges"]

    def test_no_schema(self):
        record = decide("A(x)", "A(x)")
        assert record.schema_name is None
        assert record.method == "baseline"


class TestLog:
    def test_accumulates_and_summarizes(self, tmp_path):
        log = DecisionLog()
        log.decide("A(x), B(x)", "A(x)")
        log.decide("A(x)", "B(x)")
        log.decide("A(x)", "B(x)", TBox.of([("A", "B")], name="s"))
        summary = log.summary()
        assert summary["decisions"] == 3
        assert summary["contained"] == 2
        assert summary["refuted"] == 1
        assert "baseline" in summary["methods"]
        path = tmp_path / "log.json"
        log.save(str(path))
        reloaded = json.loads(path.read_text())
        assert len(reloaded["records"]) == 3
        assert reloaded["summary"]["decisions"] == 3
