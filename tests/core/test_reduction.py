"""The Section 3 reduction: star-like countermodels via Tp(T, Q̂) oracles."""

import pytest

from repro.core.reduction import ReductionConfig, contains_via_reduction
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.queries.evaluation import satisfies, satisfies_union
from repro.queries.parser import parse_crpq, parse_query
from repro.queries.presets import example_36_factorization


class TestReduction:
    def test_not_contained_builds_verified_star(self):
        # T: A ⊑ ∃r.A — participation constraint; lhs A(x); rhs B(x)
        tbox = normalize(TBox.of([("A", "exists r.A")]))
        lhs = parse_crpq("A(x)")
        rhs = parse_query("B(x)")
        result = contains_via_reduction(lhs, rhs, tbox)
        assert not result.contained
        assert result.complete
        model = result.countermodel
        assert tbox.satisfied_by(model)
        assert satisfies(model, lhs)
        assert not satisfies_union(model, rhs)
        assert result.star is not None

    def test_contained_when_schema_forces(self):
        # A ⊑ ∃r.B plus ∀-typing: any A-match forces an r-edge to a B node
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        lhs = parse_crpq("A(x)")
        rhs = parse_query("r(x,y), B(y)")
        result = contains_via_reduction(lhs, rhs, tbox)
        assert result.contained

    def test_peripheral_witnesses_attached(self):
        # the violating node's witnesses live in the peripheral part
        tbox = normalize(TBox.of([("A", "exists r.B"), ("B", "exists r.B")]))
        lhs = parse_crpq("A(x)")
        rhs = parse_query("C(x)")
        result = contains_via_reduction(lhs, rhs, tbox)
        assert not result.contained
        assert result.entailment_calls >= 1
        # the assembled graph contains the B-witness chain
        assert any(
            result.countermodel.has_label(v, "B")
            for v in result.countermodel.node_list()
        )

    def test_factorized_query_interaction(self):
        # rhs is the Example 3.6 query; its Q̂ needs permission labels in Tp
        tbox = normalize(TBox.of([("A", "exists r.M")]))
        lhs = parse_crpq("A(x)")
        fact = example_36_factorization()
        result = contains_via_reduction(lhs, fact.original, tbox, factorization=fact)
        # A's witness M need not be B, so Q = A.r+.B is avoidable
        assert not result.contained
        assert not satisfies_union(result.countermodel, fact.original)

    def test_rejects_full_alcqi(self):
        tbox = normalize(TBox.of([("A", ">=2 r.B"), ("B", "exists s-.A")]))
        with pytest.raises(ValueError):
            contains_via_reduction(parse_crpq("A(x)"), parse_query("B(x)"), tbox)

    def test_contained_example_36(self):
        # T forces A → r-edge → B directly, so Q = A.r+.B is entailed
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        fact = example_36_factorization()
        result = contains_via_reduction(
            parse_crpq("A(x)"), fact.original, tbox, factorization=fact
        )
        assert result.contained
