"""The repair (chase completion) and probe-certification utilities."""

from repro.core.certify import probe_containment
from repro.core.repair import complete_to_model, repair_report
from repro.core.search import SearchLimits
from repro.dl.pg_schema import figure1_schema
from repro.dl.tbox import TBox, satisfies_tbox
from repro.graphs.graph import Graph, single_node_graph


class TestRepair:
    def test_completion_adds_witnesses(self):
        tbox = TBox.of([("Customer", "exists owns.CredCard")])
        g = single_node_graph(["Customer"], node="c")
        result = complete_to_model(g, tbox)
        assert result.succeeded
        assert satisfies_tbox(result.completed, tbox)
        assert result.added_nodes >= 1
        assert result.added_edges >= 1

    def test_already_model_unchanged(self):
        tbox = TBox.of([("A", "B")])
        g = single_node_graph(["A", "B"])
        result = complete_to_model(g, tbox)
        assert result.succeeded
        assert result.added_nodes == 0 and result.added_edges == 0

    def test_unrepairable(self):
        tbox = TBox.of([("A", "bottom")])
        g = single_node_graph(["A"])
        result = complete_to_model(g, tbox)
        assert not result.succeeded
        assert result.exhausted

    def test_figure1_partial_instance(self):
        g = Graph()
        g.add_node("carol", ["Customer"])
        g.add_node("plat", ["CredCard", "PremCC"])
        g.add_edge("carol", "owns", "plat")
        result = complete_to_model(g, figure1_schema())
        assert result.succeeded
        assert satisfies_tbox(result.completed, figure1_schema())
        # the premier card needed a rewards program witness
        assert any(
            result.completed.has_label(v, "RwrdProg")
            for v in result.completed.node_list()
        )

    def test_report_lists_violations(self):
        tbox = TBox.of([("Customer", "exists owns.CredCard")])
        g = single_node_graph(["Customer"], node="c")
        report = repair_report(g, tbox)
        assert len(report) == 1
        assert "'c'" in report[0] and "owns" in report[0]

    def test_internal_labels_stripped(self):
        tbox = TBox.of([("A", "exists r.(B & C)")])
        g = single_node_graph(["A"])
        result = complete_to_model(g, tbox)
        assert result.succeeded
        for node in result.completed.node_list():
            assert not any(
                name.startswith("Nz_") for name in result.completed.labels_of(node)
            )


class TestProbes:
    def test_confirms_real_containment(self):
        tbox = TBox.of([("A", "forall r.B")])
        report = probe_containment("A(x), r(x,y)", "B(y)", tbox, probes=10)
        assert not report.refuted
        assert report.confirmed == report.probes > 0

    def test_refutes_with_verified_probe(self):
        tbox = TBox.of([("A", "exists r.B")])
        report = probe_containment("A(x)", "C(x)", tbox, probes=20)
        assert report.refuted
        model = report.refutation
        assert satisfies_tbox(model, tbox)

    def test_empty_lhs_expansions(self):
        tbox = TBox.of([("A", "B")])
        # an unsatisfiable single atom regex yields no expansions
        from repro.queries.parser import parse_query

        report = probe_containment(parse_query("A(x)"), "B(x)", tbox, probes=5)
        assert not report.refuted  # A ⊑ B: every probe confirms
