"""The chase-based countermodel engine, cross-validated against the
exhaustive bounded-model oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounded import exhaustive_countermodel
from repro.core.search import CountermodelSearch, SearchLimits, search_countermodel
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.graph import Graph, single_node_graph
from repro.graphs.types import Type
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_query


def run(tbox_cis, seed_labels, avoid_text, **kwargs):
    tbox = normalize(TBox.of(tbox_cis))
    seed = single_node_graph(seed_labels, node="s0")
    avoid = parse_query(avoid_text)
    outcome = search_countermodel(tbox, avoid, seed, **kwargs)
    if outcome.found:
        assert tbox.satisfied_by(outcome.countermodel)
        assert not satisfies_union(outcome.countermodel, avoid)
        assert seed.is_subgraph_of(outcome.countermodel)
    return outcome


class TestBasicRepairs:
    def test_infinite_chase_folds_into_cycle(self):
        outcome = run([("A", "exists r.A")], ["A"], "B(x)")
        assert outcome.found
        assert outcome.countermodel.edge_count() >= 1

    def test_forced_entailment(self):
        # every model of A ⊑ ∃r.⊤ from an A-seed has an r-edge
        outcome = run([("A", "exists r.top")], ["A"], "r(x,y)")
        assert not outcome.found and outcome.exhausted

    def test_disjunction_explored(self):
        outcome = run([("A", "B | C")], ["A"], "B(x)")
        assert outcome.found
        assert outcome.countermodel.has_label("s0", "C")

    def test_universal_propagation(self):
        outcome = run(
            [("A", "exists r.top"), ("A", "forall r.B")], ["A"], "C(x)"
        )
        assert outcome.found
        model = outcome.countermodel
        successors = model.successors("s0", "r")
        assert all(model.has_label(w, "B") for w in successors)

    def test_universal_clash(self):
        # A must have an r-successor in B and all r-successors must avoid B
        outcome = run(
            [("A", "exists r.B"), ("A", "forall r.!B")], ["A"], "Zz(x)"
        )
        assert not outcome.found and outcome.exhausted

    def test_atmost_backtracks(self):
        outcome = run(
            [("A", ">=2 r.B"), ("A", "<=1 r.B")], ["A"], "Zz(x)"
        )
        assert not outcome.found and outcome.exhausted

    def test_counting_witnesses_distinct(self):
        outcome = run([("A", ">=2 r.B")], ["A"], "Zz(x)")
        assert outcome.found
        model = outcome.countermodel
        b_successors = [
            w for w in model.successors("s0", "r") if model.has_label(w, "B")
        ]
        assert len(b_successors) >= 2

    def test_query_repair_grants_labels(self):
        # avoiding !A(x) forces every node to carry A
        outcome = run([("A", "exists r.top")], ["A"], "!A(x)")
        assert outcome.found
        model = outcome.countermodel
        assert all(model.has_label(v, "A") for v in model.node_list())

    def test_inverse_role_witness(self):
        outcome = run([("B", "exists r-.A")], ["B"], "Zz(x)")
        assert outcome.found
        model = outcome.countermodel
        assert any(model.has_label(v, "A") for v in model.predecessors("s0", "r"))


class TestConstraints:
    def test_node_budget_respected(self):
        limits = SearchLimits(max_nodes=2, max_steps=2000)
        tbox = normalize(TBox.of([("A", "exists r.B"), ("B", "exists r.C"), ("C", "exists r.D")]))
        seed = single_node_graph(["A"], node=0)
        outcome = CountermodelSearch(tbox, parse_query("Zz(x)"), seed, limits=limits).run()
        if outcome.found:
            assert len(outcome.countermodel) <= 2

    def test_allowed_types(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        seed = single_node_graph(["A"], node=0)
        allowed = [Type.of("A", "!B"), Type.of("!A", "B")]
        outcome = CountermodelSearch(
            tbox, parse_query("Zz(x)"), seed,
            allowed_types=allowed, type_signature=["A", "B"],
        ).run()
        assert outcome.found
        for v in outcome.countermodel.node_list():
            a = outcome.countermodel.has_label(v, "A")
            b = outcome.countermodel.has_label(v, "B")
            assert a != b  # exactly one of the two allowed types

    def test_pinned_node_type_frozen(self):
        tbox = normalize(TBox.of([("A", "B")]))  # would need to add B
        seed = single_node_graph(["A"], node=0)
        outcome = CountermodelSearch(
            tbox, parse_query("Zz(x)"), seed,
            type_signature=["A", "B"], pinned_nodes=[0],
        ).run()
        assert not outcome.found  # cannot add B to the pinned seed

    def test_accept_callback_filters(self):
        tbox = normalize(TBox.of([("A", "B | C")]))
        seed = single_node_graph(["A"], node=0)
        outcome = CountermodelSearch(
            tbox, parse_query("Zz(x)"), seed,
            accept=lambda g: g.has_label(0, "C"),
        ).run()
        assert outcome.found
        assert outcome.countermodel.has_label(0, "C")

    def test_step_budget_reported(self):
        limits = SearchLimits(max_nodes=4, max_steps=3)
        tbox = normalize(TBox.of([("A", "exists r.A"), ("A", "B | C | D")]))
        seed = single_node_graph(["A"], node=0)
        outcome = CountermodelSearch(tbox, parse_query("B(x); C(x); D(x)"), seed, limits=limits).run()
        assert not outcome.found and not outcome.exhausted


SCENARIOS = [
    ([("A", "exists r.B")], "B(x)"),
    ([("A", "exists r.B"), ("B", "exists r.A")], "r(x,x)"),
    ([("A", "B | C")], "C(x)"),
    ([("A", "forall r.B"), ("A", "exists r.top")], "B(x)"),
    ([("A", "exists r.A")], "(r.r)(x,y)"),
    ([("A", "exists r.B"), ("B", "C | D")], "C(x), D(x)"),
]


class TestCrossValidation:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(range(len(SCENARIOS))), st.sampled_from(["A", "B"]))
    def test_agrees_with_exhaustive(self, index, seed_label):
        """chase verdict == exhaustive enumeration verdict (tiny instances)."""
        cis, avoid_text = SCENARIOS[index]
        tbox = normalize(TBox.of(cis))
        seed = single_node_graph([seed_label], node=0)
        avoid = parse_query(avoid_text)
        chase = CountermodelSearch(
            tbox, avoid, seed, limits=SearchLimits(max_nodes=3, max_steps=30_000)
        ).run()
        brute = exhaustive_countermodel(tbox, avoid, seed, max_extra_nodes=1)
        if brute is not None:
            # the space the chase explores includes the exhaustive space
            assert chase.found, (index, seed_label)
        if not chase.found and chase.exhausted:
            assert brute is None, (index, seed_label)


class TestEdgeCases:
    def test_seed_with_edges_preserved(self):
        from repro.graphs.generators import path_graph

        tbox = normalize(TBox.of([("A", "exists r.B")]))
        seed = path_graph(2, "r")
        seed.add_label(0, "A")
        outcome = CountermodelSearch(tbox, parse_query("Zz(x)"), seed).run()
        assert outcome.found
        assert seed.is_subgraph_of(outcome.countermodel)

    def test_promote_branch_used(self):
        # the existing r-successor can be promoted to B instead of adding a node
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        seed = Graph()
        seed.add_node(0, ["A"])
        seed.add_node(1)
        seed.add_edge(0, "r", 1)
        outcome = CountermodelSearch(
            tbox, parse_query("Zz(x)"), seed,
            limits=SearchLimits(max_nodes=2),  # no room for a fresh witness
        ).run()
        assert outcome.found
        assert outcome.countermodel.has_label(1, "B")

    def test_multiple_disjuncts_all_avoided(self):
        tbox = normalize(TBox.of([("A", "B | C | D")]))
        seed = single_node_graph(["A"], node=0)
        outcome = CountermodelSearch(tbox, parse_query("B(x); C(x)"), seed).run()
        assert outcome.found
        assert outcome.countermodel.has_label(0, "D")

    def test_unwinnable_disjunction(self):
        tbox = normalize(TBox.of([("A", "B | C")]))
        seed = single_node_graph(["A"], node=0)
        outcome = CountermodelSearch(tbox, parse_query("B(x); C(x)"), seed).run()
        assert not outcome.found and outcome.exhausted

    def test_atleast_count_two_distinct_existing(self):
        # reuse two existing B-nodes rather than inventing new ones
        tbox = normalize(TBox.of([("A", ">=2 r.B")]))
        seed = Graph()
        seed.add_node("a", ["A"])
        seed.add_node("b1", ["B"])
        seed.add_node("b2", ["B"])
        outcome = CountermodelSearch(
            tbox, parse_query("Zz(x)"), seed, limits=SearchLimits(max_nodes=3)
        ).run()
        assert outcome.found
        model = outcome.countermodel
        assert len([w for w in model.successors("a", "r") if model.has_label(w, "B")]) >= 2
