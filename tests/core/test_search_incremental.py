"""Incremental-chase equivalence: the `incremental` switch must never change
a verdict, a countermodel, or the certainty flag — only the speed.  Also
covers the transposition-table counters surfaced on SearchOutcome."""

from dataclasses import replace

import pytest

from repro.core.containment import ContainmentOptions, is_contained
from repro.core.entailment import finitely_entails
from repro.core.search import CountermodelSearch, SearchLimits
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.graph import single_node_graph
from repro.queries.parser import parse_query

# the E7 scenario suite: (name, CIs, seed label, query, expected entailed)
E7_CASES = [
    ("loop escape", [("A", "exists r.A")], "A", "B(x)", False),
    ("forced edge", [("A", "exists r.top")], "A", "r(x,y)", True),
    ("disjunctive", [("A", "B | C")], "A", "B(x), C(x)", False),
    ("chain", [("A", "exists r.B"), ("B", "exists r.C")], "A", "(r.r)(x,y), C(y)", True),
    ("universal", [("A", "exists r.top"), ("A", "forall r.B")], "A", "B(x)", True),
]


def _outcome_fingerprint(outcome):
    model = outcome.countermodel
    return (
        outcome.found,
        outcome.exhausted,
        None if model is None else model.describe(),
    )


class TestTranspositionTableCounters:
    def test_counters_surface_when_incremental(self):
        tbox = normalize(TBox.of([("A", "exists r.A")]))
        seed = single_node_graph(["A"], node=0)
        search = CountermodelSearch(
            tbox, parse_query("B(x)"), seed,
            limits=SearchLimits(incremental=True),
        )
        outcome = search.run()
        assert outcome.found
        assert outcome.tt_misses > 0  # every explored state is keyed
        assert outcome.tt_hits >= 0

    def test_counters_zero_when_disabled(self):
        tbox = normalize(TBox.of([("A", "exists r.A")]))
        seed = single_node_graph(["A"], node=0)
        search = CountermodelSearch(
            tbox, parse_query("B(x)"), seed,
            limits=SearchLimits(incremental=False),
        )
        outcome = search.run()
        assert outcome.found
        assert outcome.tt_misses == 0 and outcome.tt_hits == 0


class TestSearchEquivalence:
    @pytest.mark.parametrize("name,cis,seed_label,query,expected", E7_CASES)
    def test_chase_outcomes_identical(self, name, cis, seed_label, query, expected):
        tbox = normalize(TBox.of(cis))
        union = parse_query(query)
        outcomes = {}
        for incremental in (True, False):
            seed = single_node_graph([seed_label], node=0)
            search = CountermodelSearch(
                tbox, union, seed, limits=SearchLimits(incremental=incremental)
            )
            outcomes[incremental] = _outcome_fingerprint(search.run())
        assert outcomes[True] == outcomes[False]
        assert outcomes[True][0] != expected  # countermodel iff not entailed

    @pytest.mark.parametrize("name,cis,seed_label,query,expected", E7_CASES)
    def test_entailment_verdicts_identical(self, name, cis, seed_label, query, expected):
        tbox = TBox.of(cis)
        results = {}
        for incremental in (True, False):
            seed = single_node_graph([seed_label], node=0)
            result = finitely_entails(
                seed, tbox, parse_query(query),
                limits=SearchLimits(incremental=incremental),
            )
            model = result.countermodel
            results[incremental] = (
                result.entailed,
                result.method,
                None if model is None else model.describe(),
            )
            assert result.entailed == expected
        assert results[True] == results[False]


CONTAINMENT_CASES = [
    # (lhs, rhs, tbox CIs or None, method)
    ("r(x,y)", "r*(x,y)", None, "auto"),
    ("A(x), r(x,y)", "B(y)", [("A", "forall r.B")], "auto"),
    ("A(x)", "r(x,y), B(y)", [("A", "exists r.B")], "auto"),
    ("A(x)", "C(x)", [("A", "exists r.B")], "reduction"),
    ("A(x), r(x,y)", "B(y)", [("A", "forall r.B")], "sparse"),
    ("A(x); C(x)", "B(x)", [("A", "B")], "auto"),
]


class TestContainmentEquivalence:
    @pytest.mark.parametrize("lhs,rhs,cis,method", CONTAINMENT_CASES)
    def test_verdicts_bit_identical(self, lhs, rhs, cis, method):
        tbox = TBox.of(cis) if cis else None
        results = {}
        for incremental in (True, False):
            result = is_contained(
                lhs, rhs, tbox, method=method,
                options=ContainmentOptions(incremental=incremental),
            )
            model = result.countermodel
            results[incremental] = (
                result.contained,
                result.complete,
                result.method,
                None if model is None else model.describe(),
            )
        assert results[True] == results[False]

    def test_incremental_options_are_distinct_cache_keys(self):
        # forcing the flag must not serve a verdict cached under the other
        tbox = TBox.of([("A", "exists r.B")])
        on = is_contained(
            "A(x)", "r(x,y), B(y)", tbox,
            options=ContainmentOptions(incremental=True),
        )
        off = is_contained(
            "A(x)", "r(x,y), B(y)", tbox,
            options=ContainmentOptions(incremental=False),
        )
        assert on.contained == off.contained


class TestLimitsPlumbing:
    def test_incremental_flag_reaches_nested_limits(self):
        from repro.core.containment import _force_incremental

        options = ContainmentOptions(incremental=False)
        forced = _force_incremental(options)
        assert forced.limits.incremental is False
        assert forced.reduction.central_limits.incremental is False
        assert forced.reduction.peripheral_limits.incremental is False

    def test_default_limits_are_incremental(self):
        assert SearchLimits().incremental is True
        assert replace(SearchLimits(), incremental=False).incremental is False
