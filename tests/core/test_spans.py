"""Spans of witnessing paths in frames — Lemma 6.4 and the alternating bound.

* In an *alternating* frame (Section 5), components have only incoming or
  only outgoing frame edges, so an RPQ witnessing path crosses at most one
  frame edge: span ≤ 1.
* In a *role-alternating* frame (Section 6), a simple 2RPQ that is not a
  Σ_T-reachability atom has span ≤ |Σ_T| (Lemma 6.4).
"""

from repro.automata.product import witness_path
from repro.automata.semiautomaton import compile_regex
from repro.core.frames import ConcreteFrame, witness_span
from repro.graphs.graph import Graph, PointedGraph, single_node_graph
from repro.graphs.labels import Role


def _chain_frame(length: int, role_names: list[str]) -> ConcreteFrame:
    """f0 → f1 → … with single-node components and cycling roles."""
    frame = ConcreteFrame({})
    for i in range(length + 1):
        g = single_node_graph(["N"], node=("g", i))
        frame.add_component(i, PointedGraph(g, ("g", i)))
    for i in range(length):
        frame.add_edge(i, ("g", i), Role(role_names[i % len(role_names)]), i + 1)
    frame.validate()
    return frame


class TestWitnessSpan:
    def test_straight_chain_span_equals_length(self):
        frame = _chain_frame(3, ["r"])
        g = frame.represented_graph()
        compiled = compile_regex("r.r.r")
        path = witness_path(g, compiled, ("g", 0), ("g", 3))
        assert path is not None
        assert witness_span(frame, path) == 3

    def test_back_and_forth_span_one(self):
        frame = _chain_frame(1, ["r"])
        g = frame.represented_graph()
        compiled = compile_regex("r.r-.r")
        path = witness_path(g, compiled, ("g", 0), ("g", 1))
        assert path is not None
        assert witness_span(frame, path) == 1

    def test_component_internal_steps_free(self):
        # a component with an internal edge: internal traversal costs 0
        inner = Graph()
        inner.add_node(("g", 0), ["N"])
        inner.add_node(("g", 1), ["N"])
        inner.add_edge(("g", 0), "s", ("g", 1))
        frame = ConcreteFrame({})
        frame.add_component(0, PointedGraph(inner, ("g", 0)))
        frame.add_component(1, PointedGraph(single_node_graph(["N"], node=("h", 0)), ("h", 0)))
        frame.add_edge(0, ("g", 1), Role("r"), 1)
        g = frame.represented_graph()
        path = witness_path(g, compile_regex("s.r"), ("g", 0), ("h", 0))
        assert witness_span(frame, path) == 1  # only the frame edge counts


class TestLemma64:
    def test_role_alternating_span_bound(self):
        """In a frame whose connectors cycle roles r → s → r → …, a simple
        2RPQ over a proper subset of Σ_T± has span ≤ |Σ_T| = 2."""
        sigma_t = ["r", "s"]
        frame = _chain_frame(6, sigma_t)
        g = frame.represented_graph()
        # (r | s-)* is NOT a reachability atom for Σ_T = {r, s}
        compiled = compile_regex("(r|s-)*")
        bound = len(sigma_t)
        for source in g.node_list():
            for target in g.node_list():
                path = witness_path(g, compiled, source, target)
                if path:
                    assert witness_span(frame, path) <= bound, (source, target)

    def test_reachability_atom_can_exceed_bound(self):
        sigma_t = ["r", "s"]
        frame = _chain_frame(6, sigma_t)
        g = frame.represented_graph()
        # (r | s)* IS a Σ_T-reachability atom; it sweeps the whole chain
        compiled = compile_regex("(r|s)*")
        path = witness_path(g, compiled, ("g", 0), ("g", 6))
        assert path is not None
        assert witness_span(frame, path) > len(sigma_t)
