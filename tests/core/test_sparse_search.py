"""Theorem 3.1 (sparsification) and Theorem 3.2 (no-participation search)."""

import pytest

from repro.core.sparse_search import contained_without_participation, sparsify
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.homomorphism import maps_into
from repro.graphs.sparse import is_sparse
from repro.queries.evaluation import satisfies
from repro.queries.parser import parse_crpq, parse_query


class TestSparsify:
    def test_sparse_and_satisfying(self):
        for seed in range(10):
            g = random_connected_graph(6, 4, ["A", "B"], ["r"], seed=seed)
            q = parse_crpq("r*(x,y), r(y,z)")
            if not satisfies(g, q):
                continue
            shadow = sparsify(g, q)
            assert shadow is not None
            assert satisfies(shadow, q)
            assert is_sparse(shadow, q.size())

    def test_maps_homomorphically(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["A"])
        g.add_edge(0, "r", 1)
        g.add_edge(1, "r", 0)
        q = parse_crpq("(r.r.r)(x,y)")
        shadow = sparsify(g, q)
        assert shadow is not None
        assert maps_into(shadow, g)

    def test_no_match_returns_none(self):
        g = Graph()
        g.add_node(0, ["A"])
        assert sparsify(g, parse_crpq("r(x,y)")) is None


class TestNoParticipationContainment:
    def test_universal_makes_containment(self):
        # T: every r-target of an A node is B  ⟹  A(x),r(x,y) ⊆ B(y)-version
        tbox = normalize(TBox.of([("A", "forall r.B")]))
        lhs = parse_crpq("A(x), r(x,y)")
        rhs = parse_query("r(x,y), B(y)")
        result = contained_without_participation(lhs, rhs, tbox)
        assert result.contained

    def test_without_schema_not_contained(self):
        tbox = normalize(TBox.empty())
        lhs = parse_crpq("A(x), r(x,y)")
        rhs = parse_query("r(x,y), B(y)")
        result = contained_without_participation(lhs, rhs, tbox)
        assert not result.contained
        assert result.countermodel is not None
        assert satisfies(result.countermodel, lhs)

    def test_disjointness_schema(self):
        # A and B disjoint: A(x) ∧ B(x) is unsatisfiable, so contained in anything
        tbox = normalize(TBox.of([("A & B", "bottom")]))
        lhs = parse_crpq("A(x), B(x)")
        rhs = parse_query("Zz(w)")
        result = contained_without_participation(lhs, rhs, tbox)
        assert result.contained

    def test_counting_without_participation(self):
        # ≤-constraints are allowed (no at-least); ALCQI without participation
        tbox = normalize(TBox.of([("A", "<=1 r.B")]))
        lhs = parse_crpq("A(x), r(x,y), B(y)")
        rhs = parse_query("B(y)")
        result = contained_without_participation(lhs, rhs, tbox)
        assert result.contained

    def test_rejects_participation(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        with pytest.raises(ValueError):
            contained_without_participation(parse_crpq("A(x)"), parse_query("B(x)"), tbox)

    def test_countermodel_stays_sparse(self):
        tbox = normalize(TBox.of([("A", "forall r.B")]))
        lhs = parse_crpq("A(x), r*(x,y)")
        rhs = parse_query("C(z)")
        result = contained_without_participation(lhs, rhs, tbox)
        assert not result.contained
        assert is_sparse(result.countermodel, lhs.size() + 1)
