"""Star-like graphs (Fig. 2)."""

import pytest

from repro.core.starlike import Attachment, StarLikeGraph, star_of
from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph, single_node_graph
from repro.queries.evaluation import satisfies
from repro.queries.parser import parse_crpq


def simple_star():
    central = path_graph(1, "r", ["M"])
    peripheral = Graph()
    peripheral.add_node("shared", ["M"])
    peripheral.add_node("leaf", ["P"])
    peripheral.add_edge("shared", "s", "leaf")
    return star_of(central, [(peripheral, "shared", 1)])


class TestStarLike:
    def test_assembly_identifies_shared_node(self):
        star = simple_star()
        glued = star.assemble()
        assert len(glued) == 3  # 2 central + 1 fresh peripheral
        assert glued.has_edge(("c", 0), "r", ("c", 1))
        assert glued.has_edge(("c", 1), "s", ("p", 0, "leaf"))

    def test_labels_must_agree(self):
        central = single_node_graph(["A"], node=0)
        peripheral = single_node_graph(["B"], node="x")
        with pytest.raises(ValueError):
            StarLikeGraph(central, [Attachment(peripheral, "x", 0)])

    def test_missing_nodes_rejected(self):
        central = single_node_graph(["A"], node=0)
        peripheral = single_node_graph(["A"], node="x")
        with pytest.raises(ValueError):
            StarLikeGraph(central, [Attachment(peripheral, "x", 99)])
        with pytest.raises(ValueError):
            StarLikeGraph(central, [Attachment(peripheral, "zz", 0)])

    def test_parts(self):
        star = simple_star()
        parts = star.parts()
        assert len(parts) == 2
        assert parts[0] is star.central

    def test_query_across_parts(self):
        star = simple_star()
        glued = star.assemble()
        # a path crossing from the central part into the peripheral part
        assert satisfies(glued, parse_crpq("(r.s)(x,y), P(y)"))
        # but not within any single part
        assert not any(satisfies(p, parse_crpq("(r.s)(x,y)")) for p in star.parts())

    def test_multiple_attachments_same_node(self):
        central = single_node_graph(["A"], node=0)
        p1 = single_node_graph(["A"], node="x")
        p2 = Graph()
        p2.add_node("y", ["A"])
        p2.add_node("z", ["B"])
        p2.add_edge("y", "r", "z")
        star = star_of(central, [(p1, "x", 0), (p2, "y", 0)])
        glued = star.assemble()
        assert len(glued) == 2  # central node + p2's fresh leaf
