"""Section 6: the two-way pipeline (reachability relativization, counter
factorization, role-alternating frames, role-elimination recursion)."""

import pytest

from repro.core.twoway import (
    TwoWayConfig,
    drop_reachability,
    is_reachability_atom,
    realizable_refuting_twoway,
)
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.types import Type
from repro.queries.parser import parse_query


def config():
    return TwoWayConfig(max_types=500_000, max_connector_candidates=500_000)


class TestReachabilityAtoms:
    def test_classification(self):
        q = parse_query("(r|s)*(x,y), r(y,z), (r)*(x,z)")
        atoms = q.disjuncts[0].path_atoms
        assert is_reachability_atom(atoms[0], {"r", "s"})
        assert not is_reachability_atom(atoms[1], {"r", "s"})
        assert not is_reachability_atom(atoms[2], {"r", "s"})
        assert is_reachability_atom(atoms[2], {"r"})

    def test_backward_reachability(self):
        q = parse_query("(r-|s-)*(x,y)")
        assert is_reachability_atom(q.disjuncts[0].path_atoms[0], {"r", "s"})

    def test_mixed_directions_not_reachability(self):
        q = parse_query("(r|s-)*(x,y)")
        assert not is_reachability_atom(q.disjuncts[0].path_atoms[0], {"r", "s"})

    def test_drop_keeps_variables(self):
        q = parse_query("(r|s)*(x,y), A(x)")
        dropped = drop_reachability(q, {"r", "s"})
        assert dropped.disjuncts[0].variables == {"x", "y"}
        assert len(dropped.disjuncts[0].path_atoms) == 0


class TestDecisions:
    def test_forced_single_edge(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        q = parse_query("A(x), r(x,y), B(y)")
        assert not realizable_refuting_twoway(Type.of("A"), tbox, q, config=config()).realizable
        assert realizable_refuting_twoway(Type.of("B"), tbox, q, config=config()).realizable

    def test_unforced_label(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        q = parse_query("A(x), r(x,y), C(y)")
        assert realizable_refuting_twoway(Type.of("A"), tbox, q, config=config()).realizable

    def test_counting_constraints(self):
        tbox = normalize(TBox.of([("A", ">=2 r.B"), ("A", "<=2 r.B")]))
        q = parse_query("B(x), r(x,y)")
        result = realizable_refuting_twoway(Type.of("A"), tbox, q, config=config())
        assert result.realizable  # B-witnesses need no outgoing edges

    def test_empty_tbox_base_case(self):
        tbox = normalize(TBox.empty())
        q = parse_query("A(x), r(x,y), B(y)")
        assert realizable_refuting_twoway(Type.of("A"), tbox, q, config=config()).realizable

    def test_unsatisfiable_type(self):
        tbox = normalize(TBox.of([("A", "bottom")]))
        q = parse_query("Zz(x), r(x,y)")
        assert not realizable_refuting_twoway(Type.of("A"), tbox, q, config=config()).realizable


class TestGuards:
    def test_inverse_tbox_rejected(self):
        tbox = normalize(TBox.of([("A", "exists r-.B")]))
        with pytest.raises(ValueError):
            realizable_refuting_twoway(Type.of("A"), tbox, parse_query("r(x,y)"))

    def test_non_simple_query_rejected(self):
        tbox = normalize(TBox.empty())
        with pytest.raises(ValueError):
            realizable_refuting_twoway(Type.of("A"), tbox, parse_query("(r.s)(x,y)"))

    def test_recursion_depth_reported(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        q = parse_query("A(x), r(x,y), C(y)")
        result = realizable_refuting_twoway(Type.of("A"), tbox, q, config=config())
        assert result.recursion_depth == 2


class TestReachabilityQueryPipeline:
    """A genuinely *simple* star query through the full Section 6 pipeline,
    exercising the Σ₀/Σ_T-reachability relativization: the (r|s)* atom IS a
    reachability atom for Σ_T ⊆ {r, s} and gets dropped inside components."""

    def test_forced_reachability_unrealizable(self):
        from repro.queries.presets import multi_reachability_factorization

        fact = multi_reachability_factorization(["r"], star=True)
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        result = realizable_refuting_twoway(
            Type.of("A"), tbox, fact.original, factorization=fact, config=config()
        )
        assert not result.realizable  # A reaches B in one step, and A(x)∧ε∧B?
        # (also directly: the one-step edge satisfies the star)

    def test_escape_realizable(self):
        from repro.queries.presets import multi_reachability_factorization

        fact = multi_reachability_factorization(["r"], star=True)
        tbox = normalize(TBox.of([("A", "exists r.M")]))
        result = realizable_refuting_twoway(
            Type.of("A"), tbox, fact.original, factorization=fact, config=config()
        )
        assert result.realizable  # the witness chain never reaches a B
