"""ABoxes and knowledge bases."""

from repro.dl.abox import ABox, ConceptAssertion, KnowledgeBase
from repro.dl.pg_schema import figure1_instance
from repro.dl.tbox import TBox
from repro.graphs.labels import NodeLabel
from repro.queries.parser import parse_query


class TestABox:
    def test_build_and_convert(self):
        abox = ABox()
        abox.assert_concept("Customer", "ada")
        abox.assert_role("owns", "ada", "card1")
        graph = abox.to_graph()
        assert graph.has_label("ada", "Customer")
        assert graph.has_edge("ada", "owns", "card1")
        assert abox.individuals == {"ada", "card1"}

    def test_inverse_role_assertion_normalized(self):
        abox = ABox().assert_role("owns-", "card", "ada")
        graph = abox.to_graph()
        assert graph.has_edge("ada", "owns", "card")

    def test_negative_assertion_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ABox().assert_concept("!A", "x")

    def test_roundtrip_from_graph(self):
        graph = figure1_instance()
        abox = ABox.from_graph(graph)
        assert abox.to_graph() == graph


class TestKnowledgeBase:
    def test_consistency(self):
        tbox = TBox.of([("Customer", "exists owns.CredCard")])
        kb = KnowledgeBase(tbox, ABox().assert_concept("Customer", "ada"))
        assert kb.is_consistent()

    def test_inconsistency(self):
        tbox = TBox.of([("A & B", "bottom")])
        abox = ABox().assert_concept("A", "x").assert_concept("B", "x")
        kb = KnowledgeBase(tbox, abox)
        assert not kb.is_consistent()

    def test_query_entailment(self):
        tbox = TBox.of([("Customer", "exists owns.CredCard")])
        kb = KnowledgeBase(tbox, ABox().assert_concept("Customer", "ada"))
        assert kb.entails_query(parse_query("owns(x,y), CredCard(y)")).entailed
        assert not kb.entails_query(parse_query("PremCC(y)")).entailed

    def test_instance_checking(self):
        tbox = TBox.of([("PremCC", "CredCard")])
        abox = ABox().assert_concept("PremCC", "gold")
        kb = KnowledgeBase(tbox, abox)
        assert kb.entails_assertion(ConceptAssertion(NodeLabel("CredCard"), "gold"))
        assert not kb.entails_assertion(ConceptAssertion(NodeLabel("RwrdProg"), "gold"))

    def test_instance_checking_fresh_individual(self):
        tbox = TBox.of([("top", "A")])  # everything is A
        kb = KnowledgeBase(tbox, ABox().assert_concept("B", "known"))
        assert kb.entails_assertion(ConceptAssertion(NodeLabel("A"), "brand_new"))
