"""Bisimulations and the invariance theorems of the DL family."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl.bisimulation import are_bisimilar, bisimulation_classes, quotient
from repro.dl.concepts import parse_concept
from repro.graphs.generators import cycle_graph, path_graph, random_graph
from repro.graphs.graph import Graph


class TestBasics:
    def test_unravelling_bisimilar_to_cycle(self):
        """A cycle and its infinite unravelling are bisimilar; finitely, a
        long path is NOT bisimilar to a cycle (the path's end has no
        successor) — but two cycles of different lengths are."""
        c2, c3 = cycle_graph(2, "r", ["A"]), cycle_graph(3, "r", ["A"])
        assert are_bisimilar(c2, 0, c3, 0, include_inverse=False)

    def test_label_mismatch(self):
        a = Graph()
        a.add_node(0, ["A"])
        b = Graph()
        b.add_node(0, ["B"])
        assert not are_bisimilar(a, 0, b, 0)

    def test_successor_shape_mismatch(self):
        p1, p2 = path_graph(1, "r"), path_graph(2, "r")
        # starts differ: one step vs two steps ahead
        assert not are_bisimilar(p1, 0, p2, 0, include_inverse=False)
        # but their immediate ends (no outgoing r) with no incoming... differ
        assert are_bisimilar(p1, 1, p2, 2, include_inverse=False)

    def test_inverse_sensitivity(self):
        # without inverse: the middle of a path looks like its start's child
        p = path_graph(2, "r")
        lone = path_graph(1, "r")
        assert are_bisimilar(p, 1, lone, 0, include_inverse=False)
        # with inverse, node 1 has an r-predecessor, node 0 of lone has not
        assert not are_bisimilar(p, 1, lone, 0, include_inverse=True)

    def test_graded_distinguishes_counts(self):
        one = Graph()
        one.add_edge(0, "r", 1)
        two = Graph()
        two.add_edge(0, "r", 1)
        two.add_edge(0, "r", 2)
        assert are_bisimilar(one, 0, two, 0, include_inverse=False, graded=False)
        assert not are_bisimilar(one, 0, two, 0, include_inverse=False, graded=True)


class TestQuotient:
    def test_quotient_smaller_and_bisimilar(self):
        g = cycle_graph(6, "r", ["A"])
        q = quotient(g)
        assert len(q) == 1  # all nodes alike
        assert are_bisimilar(g, 0, q, next(iter(q.node_list())))

    def test_quotient_preserves_distinctions(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["B"])
        g.add_edge(0, "r", 1)
        q = quotient(g)
        assert len(q) == 2


ALC_CONCEPTS = [
    "A",
    "A & ~B",
    "exists r.A",
    "forall r.(A | B)",
    "exists r.(exists r.B)",
    "forall r.bottom",
]
ALCI_CONCEPTS = ALC_CONCEPTS + ["exists r-.A", "forall r-.~B"]
ALCQI_CONCEPTS = ALCI_CONCEPTS + [">=2 r.A", "<=1 r.B", ">=2 r-.top"]


class TestInvariance:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 3000), st.integers(0, 3000))
    def test_alci_invariance(self, seed_l, seed_r):
        """Bisimilar nodes satisfy the same ALCI concepts."""
        left = random_graph(4, 6, ["A", "B"], ["r"], seed=seed_l)
        right = random_graph(4, 6, ["A", "B"], ["r"], seed=seed_r)
        classes = bisimulation_classes(left, right, labels=["A", "B"])
        for text in ALCI_CONCEPTS:
            concept = parse_concept(text)
            left_ext = concept.extension(left)
            right_ext = concept.extension(right)
            for ln in left.node_list():
                for rn in right.node_list():
                    if classes[("L", ln)] == classes[("R", rn)]:
                        assert (ln in left_ext) == (rn in right_ext), (text, ln, rn)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 3000), st.integers(0, 3000))
    def test_alcqi_needs_graded(self, seed_l, seed_r):
        """Graded-bisimilar nodes satisfy the same ALCQI concepts."""
        left = random_graph(3, 5, ["A", "B"], ["r"], seed=seed_l)
        right = random_graph(3, 5, ["A", "B"], ["r"], seed=seed_r)
        classes = bisimulation_classes(left, right, labels=["A", "B"], graded=True)
        for text in ALCQI_CONCEPTS:
            concept = parse_concept(text)
            left_ext = concept.extension(left)
            right_ext = concept.extension(right)
            for ln in left.node_list():
                for rn in right.node_list():
                    if classes[("L", ln)] == classes[("R", rn)]:
                        assert (ln in left_ext) == (rn in right_ext), (text, ln, rn)

    def test_counting_breaks_plain_bisimulation(self):
        """The witness for why Lemma 3.5's ALCI trick ('the logic does not
        count') fails for ALCQI: ≥2 r.A distinguishes plainly-bisimilar
        nodes."""
        one = Graph()
        one.add_node(0)
        one.add_node(1, ["A"])
        one.add_edge(0, "r", 1)
        two = Graph()
        two.add_node(0)
        two.add_node(1, ["A"])
        two.add_node(2, ["A"])
        two.add_edge(0, "r", 1)
        two.add_edge(0, "r", 2)
        assert are_bisimilar(one, 0, two, 0, include_inverse=False)
        concept = parse_concept(">=2 r.A")
        assert 0 not in concept.extension(one)
        assert 0 in concept.extension(two)
