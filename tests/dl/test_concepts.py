"""ALCQI concepts: parsing, semantics, classification."""

import pytest

from repro.dl.concepts import (
    BOTTOM,
    TOP,
    AtLeast,
    AtMost,
    Atomic,
    ConceptSyntaxError,
    ForAll,
    Not,
    at_least,
    at_most,
    atomic,
    exists,
    forall,
    parse_concept,
)
from repro.graphs.graph import Graph


@pytest.fixture
def g():
    graph = Graph()
    graph.add_node("c", ["Customer"])
    graph.add_node("k1", ["CredCard"])
    graph.add_node("k2", ["CredCard", "PremCC"])
    graph.add_edge("c", "owns", "k1")
    graph.add_edge("c", "owns", "k2")
    return graph


class TestSemantics:
    def test_atomic(self, g):
        assert atomic("CredCard").extension(g) == {"k1", "k2"}
        assert atomic("!CredCard").extension(g) == {"c"}

    def test_boolean(self, g):
        c = atomic("CredCard") & ~atomic("PremCC")
        assert c.extension(g) == {"k1"}
        d = atomic("Customer") | atomic("PremCC")
        assert d.extension(g) == {"c", "k2"}

    def test_top_bottom(self, g):
        assert TOP.extension(g) == set(g.node_list())
        assert BOTTOM.extension(g) == set()

    def test_exists(self, g):
        assert exists("owns", atomic("PremCC")).extension(g) == {"c"}
        assert exists("owns", atomic("Customer")).extension(g) == set()

    def test_exists_inverse(self, g):
        assert exists("owns-", atomic("Customer")).extension(g) == {"k1", "k2"}

    def test_forall(self, g):
        # nodes with no owns-successors satisfy ∀ vacuously
        assert forall("owns", atomic("CredCard")).extension(g) == {"c", "k1", "k2"}
        assert forall("owns", atomic("PremCC")).extension(g) == {"k1", "k2"}

    def test_counting(self, g):
        assert at_least(2, "owns", atomic("CredCard")).extension(g) == {"c"}
        assert at_least(3, "owns", atomic("CredCard")).extension(g) == set()
        assert at_most(1, "owns", atomic("CredCard")).extension(g) == {"k1", "k2"}

    def test_at_least_zero_is_top(self, g):
        assert at_least(0, "owns", BOTTOM).extension(g) == set(g.node_list())


class TestClassification:
    def test_uses_inverse(self):
        assert parse_concept("exists owns-.Customer").uses_inverse_roles()
        assert not parse_concept("exists owns.Customer").uses_inverse_roles()

    def test_uses_counting(self):
        assert parse_concept(">=2 owns.CredCard").uses_counting()
        assert parse_concept("<=3 owns.CredCard").uses_counting()
        assert not parse_concept("exists owns.CredCard").uses_counting()

    def test_nested_propagation(self):
        c = parse_concept("A & (exists r.(>=2 s.B))")
        assert c.uses_counting() and not c.uses_inverse_roles()


class TestParser:
    def test_precedence(self):
        c = parse_concept("A & B | C")
        # & binds tighter than |
        assert "|" in str(c) and isinstance(c.extension(Graph()), frozenset)

    def test_quantifiers(self):
        assert isinstance(parse_concept("exists r.A"), AtLeast)
        assert isinstance(parse_concept("forall r.A"), ForAll)
        assert isinstance(parse_concept(">=2 r.A"), AtLeast)
        assert isinstance(parse_concept("<=3 r.A"), AtMost)

    def test_negation_and_complement(self):
        assert isinstance(parse_concept("~A"), Not)
        inner = parse_concept("!A")
        assert isinstance(inner, Atomic) and inner.label.negated

    def test_nested(self):
        c = parse_concept("exists owns.(CredCard & ~PremCC)")
        assert "CredCard" in set(c.concept_names())

    def test_errors(self):
        for bad in ("", "A &", "exists r", ">= r.A", "(A"):
            with pytest.raises(ConceptSyntaxError):
                parse_concept(bad)

    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError):
            AtLeast(-1, __import__("repro.graphs.labels", fromlist=["Role"]).Role("r"), TOP)
