"""Clause-consistent types."""

from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.dl.types import clause_consistent, consistent_types
from repro.graphs.types import Type


class TestClauseConsistency:
    def test_disjointness(self):
        t = normalize(TBox.of([("A & B", "bottom")]))
        assert clause_consistent(t, Type.of("A", "!B"))
        assert not clause_consistent(t, Type.of("A", "B"))

    def test_subsumption(self):
        t = normalize(TBox.of([("A", "B")]))
        assert not clause_consistent(t, Type.of("A", "!B"))
        assert clause_consistent(t, Type.of("A", "B"))
        assert clause_consistent(t, Type.of("!A", "!B"))

    def test_covering(self):
        t = normalize(TBox.of([("top", "A | B")]))
        assert not clause_consistent(t, Type.of("!A", "!B"))
        assert clause_consistent(t, Type.of("A", "!B"))

    def test_unmentioned_labels_read_as_absent(self):
        t = normalize(TBox.of([("A", "B")]))
        # type over {A} only: the clause body holds, B unmentioned => absent
        assert not clause_consistent(t, Type.of("A"))

    def test_consistent_types_enumeration(self):
        t = normalize(TBox.of([("A", "B"), ("A & C", "bottom")]))
        types = set(consistent_types(t, ["A", "B", "C"]))
        assert Type.of("A", "B", "!C") in types
        assert Type.of("A", "!B", "C") not in types
        assert Type.of("A", "B", "C") not in types
        # 8 total minus the inconsistent ones
        assert all(clause_consistent(t, sigma) for sigma in types)
