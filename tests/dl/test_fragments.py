"""Directional projections (Section 5) and the ALCQ counter factorization
(Section 6)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl.fragments import alcq_factorization, backward_projection, forward_projection, reverse_roles
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.generators import random_graph
from repro.graphs.labels import Role


class TestProjections:
    def setup_method(self):
        self.tbox = normalize(TBox.of([
            ("A", "exists r.B"),
            ("B", "exists s-.A"),
            ("A", "forall r.C"),
            ("C", "forall s-.B"),
        ], name="alci"))

    def test_forward_drops_inverse_participation(self):
        fwd = forward_projection(self.tbox)
        assert all(not ci.role.inverted for ci in fwd.at_leasts)
        assert len(fwd.at_leasts) == 1

    def test_backward_drops_forward_participation(self):
        bwd = backward_projection(self.tbox)
        assert all(ci.role.inverted for ci in bwd.at_leasts)
        assert len(bwd.at_leasts) == 1

    def test_forward_universals_are_forward(self):
        fwd = forward_projection(self.tbox)
        assert all(not ci.role.inverted for ci in fwd.universals)

    def test_flip_preserves_semantics(self):
        # A ⊑ ∀r⁻.B and its flip B̄ ⊑ ∀r.Ā hold in exactly the same graphs
        original = normalize(TBox.of([("A", "forall r-.B")]))
        flipped = forward_projection(original)
        for seed in range(30):
            g = random_graph(4, 6, ["A", "B"], ["r"], seed=seed)
            assert original.satisfied_by(g) == flipped.satisfied_by(g), seed

    def test_reverse_roles_semantics(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        reversed_tbox = reverse_roles(tbox)
        for seed in range(20):
            g = random_graph(4, 6, ["A", "B"], ["r"], seed=seed)
            mirrored = g.copy()
            # build the edge-reversed graph
            from repro.graphs.graph import Graph

            mirrored = Graph()
            for v in g.node_list():
                mirrored.add_node(v, g.labels_of(v))
            for a, r, b in g.edges():
                mirrored.add_edge(b, r, a)
            assert tbox.satisfied_by(g) == reversed_tbox.satisfied_by(mirrored), seed


class TestALCQFactorization:
    def setup_method(self):
        self.tbox = normalize(TBox.of([
            ("A", ">=2 r.B"),
            ("A", "<=3 r.B"),
            ("C", "exists r.B"),
        ], name="alcq"))
        self.factor = alcq_factorization(self.tbox)

    def test_cap(self):
        assert self.factor.cap == 4  # max cardinality 3, plus one

    def test_gamma_size(self):
        # one (role, filler) pair, counters 0..cap
        assert len(self.factor.gamma) == self.factor.cap + 1

    def test_unique_counter_placement(self):
        for seed in range(20):
            g = random_graph(5, 8, ["A", "B", "C"], ["r"], seed=seed)
            completed = self.tbox.complete(g)
            self.factor.place_counters(completed)
            # T_p's counter CIs and exactly-one clauses hold after placement
            for node in completed.node_list():
                for clause in self.factor.components_tbox.clauses:
                    if clause not in self.tbox.clauses:
                        assert clause.holds_at(completed, node), (seed, str(clause))
            assert all(
                ci.holds_at(completed, node)
                for node in completed.node_list()
                for ci in self.factor.components_tbox.at_leasts
                + self.factor.components_tbox.at_mosts
            )

    def test_tc_splits_counts_between_component_and_connector(self):
        # a connector centre with counter C_i needs exactly max(0, n-i) leaf
        # witnesses to discharge A ⊑ ∃≥2 r.B through T_c
        from repro.graphs.graph import Graph

        (role, filler), labels = next(iter(self.factor.counters.items()))
        tc = self.factor.connectors_tbox
        for component_count in range(self.factor.cap + 1):
            for leaves in range(4):
                star = Graph()
                star.add_node("c", ["A", labels[component_count].name])
                for i in range(leaves):
                    star.add_node(("l", i), ["B"])
                    star.add_edge("c", "r", ("l", i))
                completed = tc.complete(star)
                centre_ok = all(ci.holds_at(completed, "c") for ci in tc.all_cis())
                # the at-least needs component_count + leaves >= 2 and the
                # at-most needs component_count + leaves <= 3
                expected = (component_count + leaves >= 2) and (component_count + leaves <= 3)
                assert centre_ok == expected, (component_count, leaves)

    def test_inverse_roles_rejected(self):
        bad = normalize(TBox.of([("A", ">=2 r-.B")]))
        try:
            alcq_factorization(bad)
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_generation_tags(self):
        tagged = alcq_factorization(self.tbox, tag="g1")
        assert all("Cntg1_" in str(lbl) for lbl in tagged.gamma)
        assert not any(lbl in self.factor.gamma for lbl in tagged.gamma)
