"""Minimal unsatisfiable cores."""

from repro.dl.mus import explain_incoherence, incoherence_core, inconsistency_core, minimal_core
from repro.dl.reasoning import is_satisfiable
from repro.dl.tbox import CI, TBox
from repro.graphs.graph import single_node_graph


class TestIncoherenceCore:
    def test_minimal_core_found(self):
        tbox = TBox.of([
            ("Manager", "Employee"),          # essential
            ("Employee", "Person"),           # essential
            ("Manager & Person", "bottom"),   # essential
            ("Person", "exists knows.Person"),# irrelevant to the clash
            ("Team", "exists has.Manager"),   # irrelevant
        ])
        core = incoherence_core("Manager", tbox)
        assert core is not None
        assert len(core) == 3
        rendered = " | ".join(str(ci) for ci in core)
        assert "knows" not in rendered and "has" not in rendered
        # the core itself is unsatisfiable and every proper subset is not
        assert not is_satisfiable("Manager", TBox.of(core))
        for i in range(len(core)):
            subset = TBox.of(core[:i] + core[i + 1 :])
            assert is_satisfiable("Manager", subset)

    def test_satisfiable_returns_none(self):
        tbox = TBox.of([("A", "B")])
        assert incoherence_core("A", tbox) is None

    def test_explain_report(self):
        tbox = TBox.of([
            ("X", "Y"), ("X & Y", "bottom"), ("Z", "exists r.Z"),
        ])
        report = explain_incoherence(tbox)
        assert set(report) == {"X"}
        assert len(report["X"]) == 2


class TestInconsistencyCore:
    def test_kb_core(self):
        graph = single_node_graph(["A", "B"], node=0)
        tbox = TBox.of([
            ("A & B", "bottom"),
            ("A", "exists r.C"),   # repairable, not part of the clash
        ])
        core = inconsistency_core(graph, tbox)
        assert core is not None
        assert len(core) == 1
        assert "bottom" in str(core[0])

    def test_consistent_returns_none(self):
        graph = single_node_graph(["A"], node=0)
        tbox = TBox.of([("A", "exists r.B")])
        assert inconsistency_core(graph, tbox) is None


class TestGenericMUS:
    def test_custom_oracle(self):
        cis = [CI.of("A", "B"), CI.of("B", "C"), CI.of("D", "E")]

        def clashes(tbox: TBox) -> bool:
            text = str(tbox)
            return "A" in text and "C" in text  # needs both chain links

        core = minimal_core(cis, clashes)
        assert core is not None and len(core) == 2
