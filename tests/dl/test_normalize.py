"""TBox normalization: normal forms, conservativity, fragment detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl.concepts import parse_concept
from repro.dl.normalize import nnf, normalize
from repro.dl.tbox import TBox
from repro.graphs.generators import random_graph


class TestNNF:
    def test_double_negation(self):
        assert str(nnf(parse_concept("~~A"))) == "A"

    def test_de_morgan(self):
        c = nnf(parse_concept("~(A & B)"))
        assert " | " in str(c)

    def test_negated_forall(self):
        c = nnf(parse_concept("~(forall r.A)"))
        assert "exists r" in str(c) and "!A" in str(c)

    def test_negated_atleast(self):
        assert "<=1" in str(nnf(parse_concept("~(>=2 r.A)")))

    def test_negated_atmost(self):
        assert ">=4" in str(nnf(parse_concept("~(<=3 r.A)")))

    def test_negated_exists_zero(self):
        assert str(nnf(parse_concept("~(>=0 r.A)"))) == "bottom"


class TestNormalForms:
    def test_shapes(self):
        t = normalize(TBox.of([
            ("A", "forall r.(B | C)"),
            ("A & B", "exists r.(B & C)"),
            ("A", "<=2 r.B"),
        ]))
        # every universal/at-least/at-most has literal subject and filler
        for ci in t.universals:
            assert ci.subject.name and ci.filler.name
        assert t.at_leasts and t.at_mosts and t.universals

    def test_fragments(self):
        assert normalize(TBox.of([("A", "exists r.B")])).fragment() == "ALC"
        assert normalize(TBox.of([("A", "exists r-.B")])).fragment() == "ALCI"
        assert normalize(TBox.of([("A", ">=2 r.B")])).fragment() == "ALCQ"
        assert normalize(TBox.of([("A", ">=2 r.B"), ("B", "exists s-.A")])).fragment() == "ALCQI"

    def test_participation_detection(self):
        with_p = normalize(TBox.of([("A", "exists r.B")]))
        without_p = normalize(TBox.of([("A", "forall r.B"), ("A", "<=2 r.B")]))
        assert with_p.has_participation_constraints()
        assert not without_p.has_participation_constraints()
        assert not with_p.without_participation().has_participation_constraints()

    def test_max_cardinality(self):
        t = normalize(TBox.of([("A", ">=3 r.B"), ("A", "<=5 r.B")]))
        assert t.max_cardinality() == 5

    def test_restrict_roles(self):
        t = normalize(TBox.of([("A", "exists r.B"), ("A", "exists s.B")]))
        restricted = t.restrict_roles({"r"})
        assert restricted.role_names() == {"r"}
        assert restricted.clauses == t.clauses


SCHEMAS = [
    [("A", "exists r.B")],
    [("A", "forall r.(B | C)"), ("C", "~A")],
    [("A & B", "bottom"), ("top", "A | B")],
    [("A", ">=2 r.(B & ~C)")],
    [("A", "<=1 r.B"), ("B", "exists r-.A")],
    [("A", "exists r.(exists r.B))".replace("))", ")"))],
]


class TestConservativity:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 5000), st.sampled_from(range(len(SCHEMAS))))
    def test_normalized_equivalent_after_completion(self, seed, index):
        """G ⊨ T  ⟺  complete(G) ⊨ normalize(T)."""
        tbox = TBox.of(SCHEMAS[index])
        normalized = normalize(tbox)
        graph = random_graph(4, 6, ["A", "B", "C"], ["r"], seed=seed)
        completed = normalized.complete(graph)
        assert tbox.satisfied_by(graph) == normalized.satisfied_by(completed)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 5000), st.sampled_from(range(len(SCHEMAS))))
    def test_normalized_model_is_original_model(self, seed, index):
        """Any model of normalize(T) is a model of T (over the old signature)."""
        tbox = TBox.of(SCHEMAS[index])
        normalized = normalize(tbox)
        graph = random_graph(
            3, 5, ["A", "B", "C"] + sorted(normalized.fresh_names), ["r"], seed=seed
        )
        if normalized.satisfied_by(graph):
            assert tbox.satisfied_by(graph)
