"""PG-Schema front end and the Fig. 1 rewards schema."""

import pytest

from repro.dl.normalize import normalize
from repro.dl.pg_schema import PGSchema, figure1_instance, figure1_schema
from repro.dl.tbox import satisfies_tbox
from repro.graphs.graph import Graph


class TestPGSchema:
    def test_edge_type_targets(self):
        schema = PGSchema().edge_type("owns", "Customer", "CredCard")
        t = schema.to_tbox()
        g = Graph()
        g.add_node(0, ["Customer"])
        g.add_node(1, ["CredCard"])
        g.add_edge(0, "owns", 1)
        assert satisfies_tbox(g, t)
        g.add_node(2)  # an untyped target
        g.add_edge(0, "owns", 2)
        assert not satisfies_tbox(g, t)

    def test_edge_type_closed_sources(self):
        t = PGSchema().edge_type("owns", "Customer", "CredCard").to_tbox()
        g = Graph()
        g.add_node(0, ["CredCard"])  # not a Customer
        g.add_node(1, ["CredCard"])
        g.add_edge(0, "owns", 1)
        assert not satisfies_tbox(g, t)

    def test_participation(self):
        t = PGSchema().participation("Customer", "owns", "CredCard").to_tbox()
        g = Graph()
        g.add_node(0, ["Customer"])
        assert not satisfies_tbox(g, t)
        g.add_node(1, ["CredCard"])
        g.add_edge(0, "owns", 1)
        assert satisfies_tbox(g, t)

    def test_cardinality(self):
        t = PGSchema().cardinality("A", "r", "B", at_most=1).to_tbox()
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["B"])
        g.add_node(2, ["B"])
        g.add_edge(0, "r", 1)
        assert satisfies_tbox(g, t)
        g.add_edge(0, "r", 2)
        assert not satisfies_tbox(g, t)

    def test_unary_key(self):
        t = PGSchema().unary_key("Person", "ssn").to_tbox()
        g = Graph()
        g.add_node("p1", ["Person"])
        g.add_node("p2", ["Person"])
        g.add_node("v")
        g.add_edge("p1", "ssn", "v")
        assert satisfies_tbox(g, t)
        g.add_edge("p2", "ssn", "v")  # two Persons share the key value
        assert not satisfies_tbox(g, t)

    def test_unary_key_needs_alcqi(self):
        t = normalize(PGSchema().unary_key("Person", "ssn").to_tbox())
        assert t.fragment() == "ALCQI"

    def test_disjoint_and_subtype(self):
        t = PGSchema().disjoint("A", "B").subtype("C", "A").to_tbox()
        g = Graph()
        g.add_node(0, ["A", "B"])
        assert not satisfies_tbox(g, t)
        g2 = Graph()
        g2.add_node(0, ["C"])
        assert not satisfies_tbox(g2, t)  # C without A
        g2.add_label(0, "A")
        assert satisfies_tbox(g2, t)

    def test_covering(self):
        t = PGSchema().covering("Card", ["Debit", "Credit"]).to_tbox()
        g = Graph()
        g.add_node(0, ["Card"])
        assert not satisfies_tbox(g, t)
        g.add_label(0, "Debit")
        assert satisfies_tbox(g, t)

    def test_vocabulary_tracking(self):
        schema = PGSchema().edge_type("r", "A", "B").participation("A", "r", "B")
        assert schema.node_labels == {"A", "B"}
        assert schema.roles == {"r"}


class TestFigure1:
    def test_instance_satisfies_schema(self):
        assert satisfies_tbox(figure1_instance(), figure1_schema())

    def test_schema_is_alcq(self):
        assert normalize(figure1_schema()).fragment() == "ALCQ"

    def test_premier_card_constraints(self):
        g = figure1_instance()
        t = figure1_schema()
        # a premier card with 4 rewards programs violates the ≤3 bound
        for i in range(3):
            g.add_node(f"prog{i}", ["RwrdProg"])
            g.add_edge("card1", "earns", f"prog{i}")
        assert not satisfies_tbox(g, t)

    def test_customer_must_own_card(self):
        g = figure1_instance()
        g.remove_edge("ada", "owns", "card1")
        g.remove_edge("ada", "owns", "card2")
        assert not satisfies_tbox(g, figure1_schema())

    def test_partner_edges_end_in_retail(self):
        g = figure1_instance()
        g.add_node("notretail", ["Company"])
        g.add_edge("miles", "partner", "notretail")
        assert not satisfies_tbox(g, figure1_schema())
