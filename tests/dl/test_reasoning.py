"""Type-elimination satisfiability, cross-validated against the chase."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entailment import realizable_type
from repro.core.search import SearchLimits
from repro.dl.normalize import normalize
from repro.dl.reasoning import (
    UnsupportedFragment,
    build_model,
    is_coherent,
    is_satisfiable,
    type_elimination,
)
from repro.dl.tbox import TBox
from repro.graphs.types import Type
from repro.queries.parser import parse_query


class TestSatisfiability:
    def test_trivial(self):
        assert is_satisfiable("A")
        assert not is_satisfiable("A & ~A")
        assert not is_satisfiable("bottom")

    def test_with_tbox(self):
        tbox = TBox.of([("A", "B"), ("A & B", "bottom")])
        assert not is_satisfiable("A", tbox)
        assert is_satisfiable("B", tbox)

    def test_existential_chain(self):
        tbox = TBox.of([("A", "exists r.B"), ("B", "exists r.A")])
        assert is_satisfiable("A", tbox)  # a 2-cycle model exists

    def test_universal_clash(self):
        tbox = TBox.of([("A", "exists r.B"), ("A", "forall r.~B")])
        assert not is_satisfiable("A", tbox)

    def test_counting_clash(self):
        tbox = TBox.of([("A", ">=2 r.B"), ("A", "<=1 r.B")])
        assert not is_satisfiable("A", tbox)

    def test_counting_ok(self):
        tbox = TBox.of([("A", ">=3 r.B"), ("A", "<=3 r.B")])
        assert is_satisfiable("A", tbox)

    def test_inverse_roles(self):
        tbox = TBox.of([("A", "exists r-.B"), ("B", "forall r.A")])
        assert is_satisfiable("A", tbox)

    def test_alcqi_rejected(self):
        tbox = TBox.of([("A", ">=2 r.B"), ("B", "exists s-.A")])
        with pytest.raises(UnsupportedFragment):
            is_satisfiable("A", tbox)


class TestCoherence:
    def test_detects_incoherent_name(self):
        tbox = TBox.of([
            ("Manager", "Employee"),
            ("Employee", "Person"),
            ("Manager & Person", "bottom"),  # modelling bug
        ])
        report = is_coherent(tbox)
        assert report["Manager"] is False
        assert report["Employee"] is True
        assert report["Person"] is True

    def test_all_coherent(self):
        from repro.dl.pg_schema import figure1_schema

        report = is_coherent(figure1_schema())
        assert all(report.values())


class TestBuildModel:
    def test_model_realizes_type(self):
        tbox = normalize(TBox.of([("A", "exists r.B"), ("B", "exists r.A")]))
        model = build_model(Type.of("A"), tbox)
        assert model is not None
        assert any(Type.of("A").holds_at(model, v) for v in model.node_list())
        assert tbox.satisfied_by(model)

    def test_counting_model_has_distinct_witnesses(self):
        tbox = normalize(TBox.of([("A", ">=3 r.B")]))
        model = build_model(Type.of("A"), tbox)
        assert model is not None
        a_nodes = [v for v in model.node_list() if model.has_label(v, "A")]
        assert any(len(model.successors(v, "r")) >= 3 for v in a_nodes)

    def test_unsatisfiable_returns_none(self):
        tbox = normalize(TBox.of([("A", "bottom")]))
        assert build_model(Type.of("A"), tbox) is None


SCENARIOS = [
    [("A", "exists r.B")],
    [("A", "exists r.B"), ("A", "forall r.!B")],
    [("A", "B | C"), ("B", "bottom")],
    [("A", "exists r.A"), ("A", "forall r.A")],
    [("A", ">=2 r.B"), ("A", "<=1 r.B")],
    [("A", "exists r.B"), ("B", "exists r.C"), ("C", "!A & !B")],
]


class TestAgainstChase:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(range(len(SCENARIOS))), st.sampled_from(["A", "B", "C"]))
    def test_elimination_agrees_with_chase(self, index, label):
        """satisfiability of a name == chase realizability of {name}."""
        tbox = normalize(TBox.of(SCENARIOS[index]))
        eliminated = is_satisfiable(label, tbox)
        chase = realizable_type(
            Type.of(label), tbox, parse_query("Zz_never(q)"),
            limits=SearchLimits(max_nodes=6, max_steps=20_000),
        )
        if chase.exhausted:
            assert eliminated == chase.found, (index, label)
        elif chase.found:
            assert eliminated
