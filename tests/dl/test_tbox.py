"""CIs and TBoxes: model checking, violations, signatures."""

from repro.dl.tbox import CI, TBox, satisfies_tbox, tbox_violations
from repro.graphs.graph import Graph, single_node_graph


class TestCI:
    def test_holds(self):
        g = Graph()
        g.add_node(0, ["A", "B"])
        assert CI.of("A", "B").holds_in(g)
        assert not CI.of("B", "!A").holds_in(g)

    def test_violations(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["A", "B"])
        assert CI.of("A", "B").violations(g) == {0}

    def test_signature(self):
        ci = CI.of("A & B", "exists r.C")
        assert ci.concept_names() == {"A", "B", "C"}
        assert ci.role_names() == {"r"}


class TestTBox:
    def test_empty_tbox_always_satisfied(self):
        assert satisfies_tbox(single_node_graph(["A"]), TBox.empty())

    def test_of_accepts_pairs_and_cis(self):
        t = TBox.of([("A", "B"), CI.of("B", "C")], name="mix")
        assert len(t) == 2 and t.name == "mix"

    def test_satisfied_by(self):
        t = TBox.of([("A", "exists r.B")])
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["B"])
        assert not t.satisfied_by(g)
        g.add_edge(0, "r", 1)
        assert t.satisfied_by(g)

    def test_violation_report(self):
        t = TBox.of([("A", "B"), ("A", "C")])
        g = single_node_graph(["A", "B"])
        report = tbox_violations(g, t)
        assert len(report) == 1
        ci, nodes = report[0]
        assert "C" in str(ci) and nodes == {0}

    def test_extend(self):
        t = TBox.of([("A", "B")]).extend([CI.of("B", "C")])
        assert len(t) == 2

    def test_signatures(self):
        t = TBox.of([("A", "exists r.B"), ("C", "forall s-.D")])
        assert t.concept_names() == {"A", "B", "C", "D"}
        assert t.role_names() == {"r", "s"}
