"""DOT export."""

from repro.core.frames import ConcreteFrame
from repro.dl.pg_schema import figure1_instance
from repro.graphs.dot import frame_to_dot, to_dot
from repro.graphs.graph import PointedGraph, single_node_graph
from repro.graphs.labels import Role


class TestToDot:
    def test_contains_nodes_edges_labels(self):
        dot = to_dot(figure1_instance())
        assert dot.startswith("digraph G {") and dot.endswith("}")
        assert "'ada'" in dot and "owns" in dot and "Customer" in dot

    def test_highlight(self):
        g = figure1_instance()
        dot = to_dot(g, highlight={"ada"})
        assert "lightgoldenrod" in dot

    def test_quote_escaping(self):
        g = single_node_graph(["A"], node='we"ird')
        dot = to_dot(g)
        assert '\\"' in dot

    def test_empty_graph(self):
        from repro.graphs.graph import Graph

        dot = to_dot(Graph())
        assert "digraph" in dot


class TestFrameToDot:
    def test_clusters_and_stitches(self):
        frame = ConcreteFrame({})
        a = single_node_graph(["A"], node=("a", 0))
        b = single_node_graph(["B"], node=("b", 0))
        frame.add_component("fa", PointedGraph(a, ("a", 0)))
        frame.add_component("fb", PointedGraph(b, ("b", 0)))
        frame.add_edge("fa", ("a", 0), Role("r"), "fb")
        dot = frame_to_dot(frame)
        assert "subgraph cluster_0" in dot and "subgraph cluster_1" in dot
        assert "doubleoctagon" in dot  # distinguished nodes marked
        assert "style=dashed" in dot  # stitched edge
