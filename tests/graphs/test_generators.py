"""Deterministic graph generators."""

from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_graph,
    star_graph,
)
from repro.graphs.operations import is_connected


class TestGenerators:
    def test_random_graph_deterministic(self):
        a = random_graph(8, 10, ["A", "B"], ["r"], seed=42)
        b = random_graph(8, 10, ["A", "B"], ["r"], seed=42)
        assert a == b

    def test_random_graph_seed_sensitivity(self):
        a = random_graph(8, 10, ["A", "B"], ["r"], seed=1)
        b = random_graph(8, 10, ["A", "B"], ["r"], seed=2)
        assert a != b

    def test_random_connected_is_connected(self):
        for seed in range(10):
            g = random_connected_graph(12, 4, ["A"], ["r", "s"], seed=seed)
            assert is_connected(g)
            assert len(g) == 12

    def test_path_graph_shape(self):
        g = path_graph(4, "r", ["A"])
        assert len(g) == 5 and g.edge_count() == 4
        assert all(g.has_label(v, "A") for v in g.node_list())

    def test_cycle_graph_shape(self):
        g = cycle_graph(5)
        assert len(g) == 5 and g.edge_count() == 5

    def test_star_graph_shape(self):
        g = star_graph(4, "r", ["C"], ["L"])
        assert len(g) == 5
        assert len(g.successors(0, "r")) == 4

    def test_grid_graph_shape(self):
        g = grid_graph(3, 2)
        assert len(g) == 6
        assert g.has_edge((0, 0), "r", (1, 0))
        assert g.has_edge((0, 0), "s", (0, 1))
