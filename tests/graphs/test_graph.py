"""The Graph data model: labels, edges, inverse access, derived graphs."""

import pytest

from repro.graphs.graph import Graph, PointedGraph, disjoint_union, from_triples, single_node_graph


@pytest.fixture
def rewards_graph():
    g = Graph()
    g.add_node("c", ["Customer"])
    g.add_node("k", ["CredCard", "PremCC"])
    g.add_node("p", ["RwrdProg"])
    g.add_edge("c", "owns", "k")
    g.add_edge("k", "earns", "p")
    return g


class TestConstruction:
    def test_add_node_idempotent(self, rewards_graph):
        rewards_graph.add_node("c", ["VIP"])
        assert rewards_graph.labels_of("c") == {"Customer", "VIP"}

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, "r", 2)
        assert 1 in g and 2 in g

    def test_inverted_role_add(self):
        g = Graph()
        g.add_edge(1, "r-", 2)  # means an r-edge from 2 to 1
        assert g.has_edge(2, "r", 1)
        assert g.has_edge(1, "r-", 2)

    def test_complement_label_add_rejected(self, rewards_graph):
        with pytest.raises(ValueError):
            rewards_graph.add_label("c", "!Customer")

    def test_remove_node_cleans_edges(self, rewards_graph):
        rewards_graph.remove_node("k")
        assert "k" not in rewards_graph
        assert rewards_graph.successors("c", "owns") == frozenset()

    def test_remove_edge(self, rewards_graph):
        rewards_graph.remove_edge("c", "owns", "k")
        assert not rewards_graph.has_edge("c", "owns", "k")

    def test_parallel_edges_different_labels(self):
        g = Graph()
        g.add_edge(1, "r", 2)
        g.add_edge(1, "s", 2)
        assert g.edge_count() == 2


class TestInspection:
    def test_has_label_complement(self, rewards_graph):
        assert rewards_graph.has_label("c", "Customer")
        assert rewards_graph.has_label("c", "!CredCard")
        assert not rewards_graph.has_label("c", "!Customer")

    def test_successors_inverse(self, rewards_graph):
        assert rewards_graph.successors("k", "owns-") == frozenset({"c"})
        assert rewards_graph.predecessors("k", "owns") == frozenset({"c"})

    def test_edges_iteration(self, rewards_graph):
        assert set(rewards_graph.edges()) == {("c", "owns", "k"), ("k", "earns", "p")}

    def test_degree_counts_both_directions(self, rewards_graph):
        assert rewards_graph.degree("k") == 2
        assert rewards_graph.degree("c") == 1

    def test_self_loop_degree_counted_once(self):
        g = Graph()
        g.add_edge(1, "r", 1)
        assert g.degree(1) == 1

    def test_neighbours(self, rewards_graph):
        assert rewards_graph.neighbours("k") == {"c", "p"}

    def test_label_and_role_names(self, rewards_graph):
        assert rewards_graph.node_label_names() == {"Customer", "CredCard", "PremCC", "RwrdProg"}
        assert rewards_graph.role_names() == {"owns", "earns"}

    def test_missing_node_raises(self, rewards_graph):
        with pytest.raises(KeyError):
            rewards_graph.labels_of("zz")


class TestDerivedGraphs:
    def test_copy_independent(self, rewards_graph):
        clone = rewards_graph.copy()
        clone.add_label("c", "VIP")
        assert not rewards_graph.has_label("c", "VIP")
        assert clone == clone.copy()

    def test_equality(self, rewards_graph):
        assert rewards_graph == rewards_graph.copy()
        other = rewards_graph.copy()
        other.add_edge("p", "partner", "p")
        assert rewards_graph != other

    def test_relabel_nodes(self, rewards_graph):
        renamed = rewards_graph.relabel_nodes(lambda v: ("x", v))
        assert ("x", "c") in renamed
        assert renamed.has_edge(("x", "c"), "owns", ("x", "k"))

    def test_relabel_requires_injective(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(ValueError):
            g.relabel_nodes(lambda v: "same")

    def test_subgraph_induced(self, rewards_graph):
        sub = rewards_graph.subgraph(["c", "k"])
        assert len(sub) == 2
        assert sub.has_edge("c", "owns", "k")
        assert sub.edge_count() == 1

    def test_is_subgraph_of(self, rewards_graph):
        sub = rewards_graph.subgraph(["c", "k"])
        assert sub.is_subgraph_of(rewards_graph)
        assert not rewards_graph.is_subgraph_of(sub)

    def test_subgraph_label_containment(self):
        small = single_node_graph(["A"])
        big = single_node_graph(["A", "B"])
        assert small.is_subgraph_of(big)
        assert not big.is_subgraph_of(small)

    def test_disjoint_union(self, rewards_graph):
        union = disjoint_union([rewards_graph, rewards_graph])
        assert len(union) == 2 * len(rewards_graph)
        assert union.edge_count() == 2 * rewards_graph.edge_count()

    def test_from_triples(self):
        g = from_triples([(1, "r", 2), (2, "s", 3)], labels={1: ["A"]})
        assert g.has_edge(1, "r", 2) and g.has_label(1, "A")


class TestPointedGraph:
    def test_point_must_exist(self):
        g = single_node_graph(["A"], node=7)
        assert PointedGraph(g, 7).point == 7
        with pytest.raises(ValueError):
            PointedGraph(g, 8)

    def test_relabel(self):
        g = single_node_graph(["A"], node=7)
        pg = PointedGraph(g, 7).relabel_nodes({7: 9})
        assert pg.point == 9 and 9 in pg.graph
