"""Homomorphisms (paper semantics), local embeddings, isomorphism, canonical keys."""

import pytest

from repro.graphs.generators import cycle_graph, path_graph, random_connected_graph
from repro.graphs.graph import Graph, single_node_graph
from repro.graphs.homomorphism import (
    canonical_key,
    find_homomorphism,
    find_local_embedding,
    homomorphisms,
    is_homomorphism,
    is_isomorphic,
    is_local_embedding,
    maps_into,
)


class TestHomomorphism:
    def test_labels_preserved_both_ways(self):
        # the paper's homomorphisms preserve the *absence* of labels too
        source = single_node_graph(["A"])
        target = single_node_graph(["A", "B"])
        assert find_homomorphism(source, target) is None

    def test_exact_label_match_required(self):
        source = single_node_graph(["A"])
        target = single_node_graph(["A"], node="t")
        assert find_homomorphism(source, target) == {0: "t"}

    def test_edges_preserved(self):
        path = path_graph(2, "r")
        cycle = cycle_graph(1, "r")  # single self-loop
        h = find_homomorphism(path, cycle)
        assert h is not None
        assert is_homomorphism(path, cycle, h)

    def test_no_hom_into_edgeless(self):
        path = path_graph(1, "r")
        point = single_node_graph([])
        assert find_homomorphism(path, point) is None

    def test_cycle_into_shorter_cycle_divisor(self):
        assert maps_into(cycle_graph(4, "r"), cycle_graph(2, "r"))
        assert not maps_into(cycle_graph(3, "r"), cycle_graph(2, "r"))

    def test_enumeration_counts(self):
        # 2-cycle into itself: exactly the two rotations
        c2 = cycle_graph(2, "r")
        assert len(list(homomorphisms(c2, c2))) == 2

    def test_is_homomorphism_rejects_partial(self):
        path = path_graph(1, "r")
        assert not is_homomorphism(path, path, {0: 0})


class TestLocalEmbedding:
    def test_identity_is_local_embedding(self):
        g = random_connected_graph(5, 2, ["A"], ["r"], seed=3)
        identity = {v: v for v in g.node_list()}
        assert is_local_embedding(g, g, identity)

    def test_merging_successors_rejected(self):
        # two r-successors of the root collapse onto one target node
        star = Graph()
        star.add_node(0)
        star.add_node(1)
        star.add_node(2)
        star.add_edge(0, "r", 1)
        star.add_edge(0, "r", 2)
        single = path_graph(1, "r")
        mapping = {0: 0, 1: 1, 2: 1}
        assert is_homomorphism(star, single, mapping)
        assert not is_local_embedding(star, single, mapping)
        assert find_local_embedding(star, single) is None

    def test_inverse_direction_checked(self):
        # two r-predecessors collapsing is also forbidden (r⁻ successors)
        join = Graph()
        join.add_edge(1, "r", 0)
        join.add_edge(2, "r", 0)
        single = path_graph(1, "r")
        assert find_local_embedding(join, single) is None


class TestIsomorphism:
    def test_relabeled_graphs_isomorphic(self):
        g = random_connected_graph(6, 3, ["A", "B"], ["r", "s"], seed=9)
        h = g.relabel_nodes(lambda v: ("renamed", v))
        assert is_isomorphic(g, h)

    def test_different_sizes_not_isomorphic(self):
        assert not is_isomorphic(path_graph(2), path_graph(3))

    def test_label_difference_breaks_isomorphism(self):
        assert not is_isomorphic(single_node_graph(["A"]), single_node_graph(["B"]))

    def test_direction_matters(self):
        forward = path_graph(1, "r")
        backward = Graph()
        backward.add_edge(1, "r", 0)
        # as abstract graphs these ARE isomorphic (relabelling nodes)
        assert is_isomorphic(forward, backward)


class TestCanonicalKey:
    def test_isomorphic_graphs_same_key(self):
        g = random_connected_graph(6, 3, ["A", "B"], ["r", "s"], seed=11)
        h = g.relabel_nodes(lambda v: ("x", v))
        assert canonical_key(g) == canonical_key(h)

    def test_non_isomorphic_different_key(self):
        assert canonical_key(cycle_graph(3)) != canonical_key(cycle_graph(4))
        assert canonical_key(single_node_graph(["A"])) != canonical_key(single_node_graph(["B"]))

    def test_symmetric_graph(self):
        # highly symmetric graphs exercise the branch-and-minimize path
        c = cycle_graph(5, "r", ["A"])
        rotated = c.relabel_nodes(lambda v: (v + 2) % 5)
        assert canonical_key(c) == canonical_key(rotated)

    def test_empty_graph(self):
        assert canonical_key(Graph()) == ()
