"""Node labels and roles: parsing, complements, inverses."""

import pytest

from repro.graphs.labels import NodeLabel, Role, node_label, role, roles_with_inverses


class TestNodeLabel:
    def test_parse_positive(self):
        label = NodeLabel.parse("Customer")
        assert label.name == "Customer"
        assert not label.negated

    def test_parse_complement(self):
        label = NodeLabel.parse("!Customer")
        assert label.name == "Customer"
        assert label.negated

    def test_complement_involution(self):
        label = NodeLabel("A")
        assert label.complement().complement() == label

    def test_complement_flips(self):
        assert NodeLabel("A").complement() == NodeLabel("A", True)

    def test_positive_projection(self):
        assert NodeLabel("A", True).positive == NodeLabel("A")

    def test_str_roundtrip(self):
        for text in ("A", "!A", "Long_Name2"):
            assert str(NodeLabel.parse(text)) == text

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            NodeLabel("not a name!")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NodeLabel("")

    def test_ordering_and_hash(self):
        labels = {NodeLabel("A"), NodeLabel("A"), NodeLabel("A", True)}
        assert len(labels) == 2
        assert sorted(labels) == [NodeLabel("A"), NodeLabel("A", True)]


class TestRole:
    def test_parse_forward(self):
        r = Role.parse("owns")
        assert r.name == "owns" and not r.inverted

    def test_parse_inverse(self):
        r = Role.parse("owns-")
        assert r.name == "owns" and r.inverted

    def test_inverse_involution(self):
        assert Role("r").inverse().inverse() == Role("r")

    def test_base(self):
        assert Role("r", True).base == Role("r")

    def test_str_roundtrip(self):
        for text in ("r", "r-", "owns"):
            assert str(Role.parse(text)) == text

    def test_coercions(self):
        assert role("r-") == Role("r", True)
        assert role(Role("r")) == Role("r")
        assert node_label("!A") == NodeLabel("A", True)

    def test_roles_with_inverses(self):
        closure = roles_with_inverses(["r", "s-"])
        assert closure == {Role("r"), Role("r", True), Role("s"), Role("s", True)}
