"""Graph statistics."""

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.metrics import stats, undirected_diameter


class TestDiameter:
    def test_path(self):
        assert undirected_diameter(path_graph(4)) == 4

    def test_cycle(self):
        assert undirected_diameter(cycle_graph(6)) == 3

    def test_disconnected(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        assert undirected_diameter(g) is None

    def test_empty(self):
        assert undirected_diameter(Graph()) is None

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        assert undirected_diameter(g) == 0


class TestStats:
    def test_star(self):
        g = star_graph(4, "r", ["C"], ["L"])
        s = stats(g)
        assert s.nodes == 5 and s.edges == 4
        assert s.max_out_degree == 4 and s.max_in_degree == 1
        assert s.label_histogram == {"C": 1, "L": 4}
        assert s.role_histogram == {"r": 4}
        assert s.sparsity == -1
        assert s.undirected_diameter == 2

    def test_sparsity_matches_module(self):
        from repro.graphs.sparse import sparsity

        g = cycle_graph(5)
        assert stats(g).sparsity == sparsity(g)

    def test_str_rendering(self):
        text = str(stats(star_graph(2, "r", ["C"])))
        assert "nodes=3" in text and "roles[r:2]" in text
