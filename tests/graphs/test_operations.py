"""Structural operations: components, SCCs, reachability, unravellings."""

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph, disjoint_union
from repro.graphs.operations import (
    condensation,
    connected_components,
    is_connected,
    one_step_unravelling,
    reachable_from,
    scc_of,
    strongly_connected_components,
    undirected_spanning_tree,
)


class TestConnectivity:
    def test_single_component(self):
        assert len(connected_components(path_graph(3))) == 1
        assert is_connected(path_graph(3))

    def test_two_components(self):
        g = disjoint_union([path_graph(2), cycle_graph(3)])
        assert len(connected_components(g)) == 2
        assert not is_connected(g)

    def test_empty_graph_connected(self):
        assert is_connected(Graph())

    def test_direction_ignored(self):
        g = Graph()
        g.add_edge(0, "r", 1)
        g.add_edge(2, "r", 1)  # 2 only reaches 1 forward; undirected connected
        assert is_connected(g)


class TestSCC:
    def test_path_has_singleton_sccs(self):
        sccs = strongly_connected_components(path_graph(3))
        assert all(len(c) == 1 for c in sccs)
        assert len(sccs) == 4

    def test_cycle_single_scc(self):
        sccs = strongly_connected_components(cycle_graph(4))
        assert len(sccs) == 1 and len(sccs[0]) == 4

    def test_mixed(self):
        g = cycle_graph(3)
        g.add_edge(2, "r", "tail")
        sccs = strongly_connected_components(g)
        assert {frozenset(c) for c in sccs} == {frozenset({0, 1, 2}), frozenset({"tail"})}

    def test_scc_of(self):
        g = cycle_graph(3)
        g.add_edge(2, "r", "tail")
        assert scc_of(g, 1) == {0, 1, 2}
        assert scc_of(g, "tail") == {"tail"}

    def test_condensation_is_dag(self):
        g = cycle_graph(3)
        g.add_edge(2, "r", "tail")
        dag, member = condensation(g)
        assert len(dag) == 2
        assert member[0] == member[1] == member[2]
        assert all(len(c) == 1 for c in strongly_connected_components(dag))

    def test_long_chain_no_recursion_error(self):
        assert len(strongly_connected_components(path_graph(3000))) == 3001


class TestReachability:
    def test_reachable_from(self):
        g = path_graph(4)
        assert reachable_from(g, 0) == {0, 1, 2, 3, 4}
        assert reachable_from(g, 2) == {2, 3, 4}

    def test_bounded_steps(self):
        g = path_graph(4)
        assert reachable_from(g, 0, max_steps=2) == {0, 1, 2}


class TestUnravelling:
    def test_one_step_out(self):
        g = star_graph(3, "r", center_labels=["C"], leaf_labels=["L"])
        star = one_step_unravelling(g, 0, "out")
        assert len(star) == 4
        assert star.labels_of(("c", 0)) == {"C"}

    def test_one_step_in(self):
        g = Graph()
        g.add_edge(1, "r", 0)
        g.add_edge(2, "r", 0)
        star = one_step_unravelling(g, 0, "in")
        assert len(star) == 3
        assert all(star.has_edge(p, "r", ("c", 0)) for p in star.node_list() if p != ("c", 0))

    def test_duplicates_get_fresh_copies(self):
        g = Graph()
        g.add_edge(0, "r", 1)
        g.add_edge(0, "s", 1)  # same successor via two roles
        star = one_step_unravelling(g, 0, "out")
        assert len(star) == 3  # centre + one fresh copy per edge


class TestSpanningTree:
    def test_tree_covers_component(self):
        g = cycle_graph(4)
        tree, extra = undirected_spanning_tree(g, 0)
        assert len(tree) == 3 and len(extra) == 1
        assert tree | extra == set(g.edges())
