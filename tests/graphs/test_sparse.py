"""c-sparsity (Lee–Streinu) and sparse decompositions."""

import pytest

from repro.graphs.generators import cycle_graph, path_graph, random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.sparse import decompose_sparse, is_sparse, sparsity


class TestSparsity:
    def test_tree_is_minus1_sparse(self):
        assert sparsity(path_graph(5)) == -1
        assert is_sparse(path_graph(5), -1)

    def test_cycle_is_0_sparse(self):
        assert sparsity(cycle_graph(4)) == 0
        assert is_sparse(cycle_graph(4), 0)
        assert not is_sparse(cycle_graph(4), -1)

    def test_monotone_in_c(self):
        g = cycle_graph(3)
        assert is_sparse(g, 5)

    def test_empty_graph(self):
        assert is_sparse(Graph(), -1)


class TestDecomposition:
    def test_tree_plus_extra(self):
        g = random_connected_graph(8, 3, ["A"], ["r"], seed=4)
        decomposition = decompose_sparse(g)
        assert len(decomposition.tree_edges) == len(g) - 1
        assert decomposition.excess == g.edge_count() - (len(g) - 1)
        assert decomposition.tree_edges | decomposition.extra_edges == set(g.edges())

    def test_excess_bounds_sparsity(self):
        # a connected c-sparse graph is a tree plus at most c+1 edges
        for seed in range(5):
            g = random_connected_graph(6, 2, ["A"], ["r"], seed=seed)
            c = sparsity(g)
            assert decompose_sparse(g).excess <= c + 1

    def test_disconnected_rejected(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(ValueError):
            decompose_sparse(g)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            decompose_sparse(Graph())

    def test_custom_root(self):
        g = cycle_graph(3)
        assert decompose_sparse(g, root=2).root == 2
