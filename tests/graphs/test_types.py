"""Node types: maximal types, realization, respect."""

import pytest

from repro.graphs.graph import Graph, single_node_graph
from repro.graphs.types import Type, maximal_types, realized_types, respects, type_of


class TestType:
    def test_consistency_enforced(self):
        with pytest.raises(ValueError):
            Type.of("A", "!A")

    def test_positive_negative_names(self):
        t = Type.of("A", "!B")
        assert t.positive_names == {"A"}
        assert t.negative_names == {"B"}
        assert t.signature() == {"A", "B"}

    def test_maximality(self):
        assert Type.of("A", "!B").is_maximal_over(["A", "B"])
        assert not Type.of("A").is_maximal_over(["A", "B"])

    def test_restrict(self):
        t = Type.of("A", "!B", "C")
        assert t.restrict(["A", "B"]) == Type.of("A", "!B")

    def test_extend(self):
        assert Type.of("A").extend(["!B"]) == Type.of("A", "!B")
        with pytest.raises(ValueError):
            Type.of("A").extend(["!A"])

    def test_contains_type(self):
        assert Type.of("A", "!B").contains_type(Type.of("A"))
        assert not Type.of("A").contains_type(Type.of("A", "!B"))

    def test_holds_at(self):
        g = single_node_graph(["A"], node=0)
        assert Type.of("A", "!B").holds_at(g, 0)
        assert not Type.of("A", "B").holds_at(g, 0)


class TestTypeComputation:
    def test_type_of(self):
        g = single_node_graph(["A", "C"], node=0)
        assert type_of(g, 0, ["A", "B"]) == Type.of("A", "!B")

    def test_maximal_types_count(self):
        assert len(list(maximal_types(["A", "B", "C"]))) == 8

    def test_maximal_types_are_maximal(self):
        for t in maximal_types(["A", "B"]):
            assert t.is_maximal_over(["A", "B"])

    def test_realized_types(self):
        g = Graph()
        g.add_node(1, ["A"])
        g.add_node(2, ["A"])
        g.add_node(3, ["B"])
        realized = realized_types(g, ["A", "B"])
        assert realized == {Type.of("A", "!B"), Type.of("!A", "B")}

    def test_respects(self):
        g = Graph()
        g.add_node(1, ["A"])
        g.add_node(2, ["B"])
        assert respects(g, [Type.of("A"), Type.of("B")])
        assert not respects(g, [Type.of("A", "B")])
        assert respects(g, [Type()])  # the empty type allows everything
