"""Cross-validation: the Sections 5–6 fixpoint procedures against the
chase-based countermodel engine on a grid of small instances.

For every (TBox, type) pair, "τ realizable in a finite T-model refuting Q"
must agree between:

* the type-elimination procedure (one-way: alternating frames; two-way:
  role-alternating frames + recursion), and
* a direct chase search from a pinned τ-seed avoiding Q̂.
"""

import pytest

from repro.core.entailment import realizable_type
from repro.core.oneway import realizable_refuting_oneway
from repro.core.search import SearchLimits
from repro.core.twoway import TwoWayConfig, realizable_refuting_twoway
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.graphs.types import Type
from repro.queries.parser import parse_query
from repro.queries.presets import example_36_factorization, example_36_query

LIMITS = SearchLimits(max_nodes=5, max_steps=20_000)

ONEWAY_TBOXES = [
    [],
    [("A", "exists r.B")],
    [("A", "exists r.M")],
    [("A", "exists r.M"), ("M", "exists r.B")],
    [("B", "exists r-.A")],
    [("A", "exists r.top"), ("A", "forall r.B")],
    [("A", "forall r.B")],
    [("A", "exists r.A")],
    [("M", "A | B"), ("A", "exists r.M")],
]


class TestOneWayAgainstChase:
    @pytest.mark.parametrize("index", range(len(ONEWAY_TBOXES)))
    @pytest.mark.parametrize("label", ["A", "B", "M"])
    def test_agreement(self, index, label):
        tbox = normalize(TBox.of(ONEWAY_TBOXES[index]))
        fact = example_36_factorization()
        tau = Type.of(label)
        fixpoint = realizable_refuting_oneway(
            tau, tbox, example_36_query(), factorization=fact, limits=LIMITS
        )
        chase = realizable_type(tau, tbox, fact.factored, limits=LIMITS)
        if chase.found:
            assert fixpoint.realizable, (index, label)
        if fixpoint.realizable and fixpoint.complete and chase.exhausted:
            assert chase.found, (index, label)


TWOWAY_CASES = [
    ([("A", "exists r.B")], "A(x), r(x,y), B(y)", "A", False),
    ([("A", "exists r.B")], "A(x), r(x,y), B(y)", "B", True),
    ([("A", "exists r.B")], "A(x), r(x,y), C(y)", "A", True),
    ([], "A(x), r(x,y), B(y)", "A", True),
    ([("A", "bottom")], "r(x,y)", "A", False),
]


class TestTwoWayAgainstChase:
    @pytest.mark.parametrize("cis,query_text,label,expected", TWOWAY_CASES)
    def test_agreement(self, cis, query_text, label, expected):
        tbox = normalize(TBox.of(cis))
        query = parse_query(query_text)
        tau = Type.of(label)
        config = TwoWayConfig(max_types=500_000, max_connector_candidates=500_000)
        fixpoint = realizable_refuting_twoway(tau, tbox, query, config=config)
        assert fixpoint.realizable == expected
        chase = realizable_type(tau, tbox, query, limits=LIMITS)
        if chase.found:
            assert fixpoint.realizable
        if chase.exhausted and not chase.found:
            assert not fixpoint.realizable
