"""Example 1.1 / Fig. 1 end to end — the paper's running example.

* q₂ ⊆ q₁ without any schema;
* q₁ ⊄ q₂ without a schema (with a concrete countermodel);
* modulo the Fig. 1 rewards schema S, q₁ ⊆_S q₂ as well.
"""

import pytest

from repro.core.containment import ContainmentOptions, is_contained
from repro.dl.normalize import normalize
from repro.dl.pg_schema import figure1_instance, figure1_schema
from repro.dl.tbox import satisfies_tbox
from repro.queries.evaluation import satisfies_union
from repro.queries.presets import example_11_q1, example_11_q2


@pytest.fixture(scope="module")
def schema():
    return figure1_schema()


@pytest.fixture(scope="module")
def q1():
    return example_11_q1()


@pytest.fixture(scope="module")
def q2():
    return example_11_q2()


class TestWithoutSchema:
    def test_q2_contained_in_q1(self, q1, q2):
        assert is_contained(q2, q1).contained

    def test_q1_not_contained_in_q2(self, q1, q2):
        result = is_contained(q1, q2)
        assert not result.contained
        assert result.complete
        model = result.countermodel
        assert satisfies_union(model, q1)
        assert not satisfies_union(model, q2)


class TestWithSchema:
    def test_q1_contained_in_q2_modulo_schema(self, schema, q1, q2):
        result = is_contained(q1, q2, schema)
        assert result.contained

    def test_q2_contained_in_q1_modulo_schema(self, schema, q1, q2):
        assert is_contained(q2, q1, schema).contained

    def test_schema_countermodel_gone(self, schema, q1, q2):
        """The schema-free countermodel violates the schema."""
        free = is_contained(q1, q2).countermodel
        assert not satisfies_tbox(free, schema)

    def test_schema_fragment_is_supported(self, schema, q1, q2):
        assert normalize(schema).fragment() == "ALCQ"
        assert q1.is_one_way() and q2.is_one_way()  # combination C1
        result = is_contained(q1, q2, schema)
        assert result.supported_by_theory


class TestInstanceQueries:
    def test_both_queries_match_instance(self, q1, q2):
        g = figure1_instance()
        assert satisfies_union(g, q1)
        assert satisfies_union(g, q2)

    def test_instance_satisfies_schema(self, schema):
        assert satisfies_tbox(figure1_instance(), schema)
