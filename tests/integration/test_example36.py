"""Example 3.6 end to end: the factorized query over the Fig. 2 star shape,
and finite entailment of the reachability query."""

from repro.core.entailment import finitely_entails
from repro.core.starlike import star_of
from repro.dl.tbox import TBox
from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph, single_node_graph
from repro.queries.evaluation import satisfies_union
from repro.queries.presets import example_36_factorization, example_36_query


def figure2_star():
    """A Fig. 2-like star: an r-path through the central part, with the A
    node in one peripheral part and the B node in another."""
    central = path_graph(2, "r")  # nodes 0,1,2
    left = Graph()
    left.add_node("a", ["A"])
    left.add_node("a_shared")
    left.add_edge("a", "r", "a_shared")
    right = Graph()
    right.add_node("b_shared")
    right.add_node("b", ["B"])
    right.add_edge("b_shared", "r", "b")
    return star_of(central, [(left, "a_shared", 0), (right, "b_shared", 2)])


class TestFigure2:
    def test_query_holds_across_parts_only(self):
        star = figure2_star()
        query = example_36_query()
        assert satisfies_union(star.assemble(), query)
        assert not any(satisfies_union(p, query) for p in star.parts())

    def test_factorized_query_detects_it_in_a_part(self):
        """Condition (1) in action: on the truthfully labelled star, some
        disjunct of Q̂ fires within a single part."""
        star = figure2_star()
        fact = example_36_factorization()
        labelled = fact.truthful_labelling(star.assemble())
        assert satisfies_union(labelled, fact.factored)


class TestEntailmentOfExample36:
    def test_not_entailed_without_constraints(self):
        result = finitely_entails(
            single_node_graph(["A"]), TBox.empty(), example_36_query()
        )
        assert not result.entailed

    def test_entailed_with_forcing_chain(self):
        tbox = TBox.of([("A", "exists r.B")])
        result = finitely_entails(single_node_graph(["A"]), tbox, example_36_query())
        assert result.entailed

    def test_not_entailed_with_escape(self):
        # the witness can loop in M forever without reaching B
        tbox = TBox.of([("A", "exists r.M"), ("M", "exists r.M")])
        result = finitely_entails(single_node_graph(["A"]), tbox, example_36_query())
        assert not result.entailed
        model = result.countermodel
        assert not satisfies_union(model, example_36_query())
