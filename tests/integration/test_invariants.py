"""Cross-cutting paper invariants, property-tested.

* homomorphisms (paper semantics) preserve query satisfaction — the remark
  after the match definition in Section 2;
* sparsification (Theorem 3.1) yields sparse, satisfying, mapping shadows;
* the coil restructuring preserves local structure while killing short
  cyclic matches (Lemma 4.3's mechanism);
* clause consistency of a maximal type coincides with model checking the
  single-node graph it induces.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coil import coil
from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.dl.types import clause_consistent
from repro.graphs.generators import random_connected_graph, random_graph
from repro.graphs.graph import Graph, single_node_graph
from repro.graphs.homomorphism import find_homomorphism, is_homomorphism
from repro.graphs.sparse import is_sparse
from repro.graphs.types import Type, maximal_types
from repro.queries.evaluation import satisfies
from repro.queries.parser import parse_crpq

QUERIES = [
    "A(x), r(x,y)",
    "!A(x), r(x,y), B(y)",
    "(r.s)(x,y)",
    "r*(x,y), B(y)",
    "r-(x,y), A(y)",
    "A(x), ({!B}.r)(x,y)",
]


class TestHomomorphismPreservation:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 3000),
        st.integers(0, 3000),
        st.sampled_from(QUERIES),
    )
    def test_satisfaction_preserved(self, seed_g, seed_h, query_text):
        """G ⊨ q and G → G' (paper homomorphism) implies G' ⊨ q — even for
        queries with complement labels, because the paper's homomorphisms
        preserve label absence."""
        g = random_graph(3, 4, ["A", "B"], ["r", "s"], seed=seed_g)
        h = random_graph(4, 7, ["A", "B"], ["r", "s"], seed=seed_h)
        mapping = find_homomorphism(g, h)
        if mapping is None:
            return
        query = parse_crpq(query_text)
        if satisfies(g, query):
            assert satisfies(h, query), (seed_g, seed_h, query_text)


class TestSparsification:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2000), st.sampled_from(["r*(x,y), r(y,z)", "r(x,y), r(y,z), r*(z,w)"]))
    def test_theorem31_shape(self, seed, query_text):
        from repro.core.sparse_search import sparsify
        from repro.graphs.homomorphism import maps_into

        g = random_connected_graph(6, 5, ["A"], ["r"], seed=seed)
        query = parse_crpq(query_text)
        if not satisfies(g, query):
            return
        shadow = sparsify(g, query)
        assert shadow is not None
        assert satisfies(shadow, query)
        assert is_sparse(shadow, query.size())
        assert maps_into(shadow, g)


class TestCoilInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 3))
    def test_coil_preserves_satisfaction_downward(self, seed, n):
        """Coil(G,n) maps onto G, so queries true in the coil are true in G."""
        g = random_connected_graph(4, 2, ["A", "B"], ["r"], seed=seed)
        c = coil(g, n)
        mapping = {v: c.h(v) for v in c.graph.node_list()}
        assert is_homomorphism(c.graph, g, mapping)
        for query_text in ("A(x), r(x,y)", "(r.r)(x,y)"):
            query = parse_crpq(query_text)
            if satisfies(c.graph, query):
                assert satisfies(g, query)


class TestTypeSemantics:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 1000))
    def test_clause_consistency_is_single_node_model_checking(self, seed):
        rng = random.Random(seed)
        cis = []
        labels = ["A", "B", "C"]
        for _ in range(rng.randint(1, 3)):
            lhs = rng.choice(labels)
            rhs = rng.choice([f"{rng.choice(labels)}", f"!{rng.choice(labels)}", "bottom"])
            cis.append((lhs, rhs))
        tbox = normalize(TBox.of(cis))
        for node_type in maximal_types(labels):
            node_graph = single_node_graph(sorted(node_type.positive_names))
            model_check = all(
                clause.holds_at(node_graph, 0) for clause in tbox.clauses
            )
            assert clause_consistent(tbox, node_type) == model_check, str(node_type)
