"""A CI-pipeline-shaped integration scenario: records + probes + repair.

Models how a downstream system would wire the library into a schema-change
review: decide the query-compatibility matrix, stress-test the bounded
verdicts with probes, and repair a sample instance against the new schema.
"""

import json

from repro.core.certify import probe_containment
from repro.core.records import DecisionLog
from repro.core.repair import complete_to_model
from repro.dl.pg_schema import figure1_schema
from repro.dl.tbox import TBox, satisfies_tbox
from repro.graphs.graph import Graph
from repro.queries.presets import example_11_q1, example_11_q2


class TestReviewPipeline:
    def test_end_to_end(self, tmp_path):
        schema = figure1_schema()
        q1, q2 = example_11_q1(), example_11_q2()
        log = DecisionLog()

        # 1. the compatibility matrix
        log.decide(q2, q1)
        log.decide(q1, q2)
        log.decide(q1, q2, schema)
        log.decide(q2, q1, schema)
        summary = log.summary()
        assert summary["decisions"] == 4
        assert summary["contained"] == 3 and summary["refuted"] == 1

        # 2. probe the bounded with-schema verdict
        report = probe_containment(q1, q2, schema, probes=8, seed=1)
        assert not report.refuted
        assert report.confirmed > 0

        # 3. repair a sample instance against the schema
        sample = Graph()
        sample.add_node("cust", ["Customer"])
        sample.add_node("gold", ["CredCard", "PremCC"])
        sample.add_edge("cust", "owns", "gold")
        repair = complete_to_model(sample, schema)
        assert repair.succeeded
        assert satisfies_tbox(repair.completed, schema)

        # 4. the artifacts serialize for the review record
        path = tmp_path / "review.json"
        log.save(str(path))
        data = json.loads(path.read_text())
        refutations = [r for r in data["records"] if not r["contained"]]
        assert len(refutations) == 1
        assert refutations[0]["countermodel"] is not None

    def test_schema_migration_breaks_containment(self):
        """Dropping the partner typing reopens the q1 ⊆ q2 gap."""
        from repro.dl.pg_schema import PGSchema
        from repro.core.containment import is_contained

        weakened = PGSchema(name="weakened")
        weakened.constraint("Customer", "forall owns.CredCard")
        weakened.participation("Customer", "owns", "CredCard")
        # note: NO partner edge-typing — the RetailCompany guarantee is gone
        q1, q2 = example_11_q1(), example_11_q2()
        result = is_contained(q1, q2, weakened.to_tbox())
        assert not result.contained
        assert result.countermodel is not None
