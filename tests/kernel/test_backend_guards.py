"""Regression tests: backend-resolution guards and vec table-cache bounds.

Covers the failure modes around infeasibly wide signatures: explicit
``backend="vec"`` must fail eagerly at resolve time (not lazily inside an
enumeration), ``"auto"`` must never select a table the enumerator cannot
materialize, and the per-process table cache must bound retained *rows*,
not just entry count.
"""

import pytest

from repro.dl.normalize import NormalizedTBox
from repro.dl.types import consistent_types
from repro.kernel import vec
from repro.kernel.vec import (
    HAVE_NUMPY,
    VEC_MAX_ROWS,
    VecUnavailable,
    resolve_backend,
)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed; vec backend unavailable"
)


def _empty_tbox(name="guards"):
    return NormalizedTBox(
        clauses=[], universals=[], at_leasts=[], at_mosts=[], name=name
    )


def test_auto_never_selects_vec_beyond_enum_limit():
    assert resolve_backend("auto", VEC_MAX_ROWS * 2) == "bitset"


@needs_numpy
def test_explicit_vec_beyond_enum_limit_raises_eagerly():
    with pytest.raises(VecUnavailable, match="candidate rows"):
        resolve_backend("vec", VEC_MAX_ROWS * 2)


@needs_numpy
def test_consistent_types_vec_wide_signature_raises_at_call_time():
    wide = [f"A{i}" for i in range(70)]
    # the error must surface here, not at the first next() of the result
    with pytest.raises(VecUnavailable):
        consistent_types(_empty_tbox(), wide, backend="vec")


@needs_numpy
def test_table_cache_skips_oversized_tables(monkeypatch):
    monkeypatch.setattr(vec, "_TABLE_CACHE", {})
    monkeypatch.setattr(vec, "_TABLE_CACHE_ENTRY_ROWS", 4)
    table = vec.vec_table_for(_empty_tbox(), ["A0", "A1", "A2"])
    assert len(table) == 8  # built and returned...
    assert vec._TABLE_CACHE == {}  # ...but not retained


@needs_numpy
def test_table_cache_row_budget_evicts_oldest(monkeypatch):
    monkeypatch.setattr(vec, "_TABLE_CACHE", {})
    monkeypatch.setattr(vec, "_TABLE_CACHE_MAX_ROWS", 10)
    tbox = _empty_tbox()
    vec.vec_table_for(tbox, ["A0", "A1", "A2"])  # 8 rows
    second = vec.vec_table_for(tbox, ["B0", "B1", "B2"])  # 8 more: over budget
    assert len(vec._TABLE_CACHE) == 1
    assert next(iter(vec._TABLE_CACHE.values())) is second


@needs_numpy
def test_table_cache_hit_returns_same_table():
    vec._TABLE_CACHE.clear()
    tbox = _empty_tbox()
    first = vec.vec_table_for(tbox, ["A0", "A1"])
    assert vec.vec_table_for(tbox, ["A0", "A1"]) is first
