"""Edge-case units for the bitset kernel: empty and single-name signatures.

The property suites cover random mid-sized signatures; these pin the
degenerate ends — Γ₀ = ∅ (one maximal type: the empty type) and |Γ₀| = 1 —
plus the out-of-Γ₀ literal folding rules on those signatures, where an
off-by-one in mask construction would be invisible to the random tests.
"""

from repro.dl.normalize import ClauseCI
from repro.graphs.labels import NodeLabel
from repro.graphs.types import Type
from repro.kernel.bitset import CompiledClauses, TypeKernel


def clause(body, head):
    return ClauseCI(frozenset(body), frozenset(head))


class TestEmptySignature:
    def test_decode_zero_is_the_empty_type(self):
        kernel = TypeKernel([])
        assert kernel.size == 0
        assert kernel.full_mask == 0
        sigma = kernel.decode(0)
        assert sigma == Type([])
        assert sigma.signature() == frozenset()
        assert kernel.encode(sigma) == 0

    def test_all_types_is_exactly_the_empty_type(self):
        assert list(TypeKernel([]).all_types()) == [0]

    def test_no_clauses_keeps_the_empty_type(self):
        compiled = CompiledClauses(TypeKernel([]), [])
        assert list(compiled.consistent_bits()) == [0]

    def test_top_implies_bottom_kills_the_empty_type(self):
        # ⊤ ⊑ ⊥: empty body always holds, empty head never does
        compiled = CompiledClauses(TypeKernel([]), [clause([], [])])
        assert list(compiled.consistent_bits()) == []

    def test_out_of_signature_positive_body_is_vacuous(self):
        # B ⊑ ⊥ with B ∉ Γ₀: the body can never hold, clause dropped
        compiled = CompiledClauses(
            TypeKernel([]), [clause([NodeLabel("B")], [])]
        )
        assert compiled.rows == []
        assert list(compiled.consistent_bits()) == [0]

    def test_out_of_signature_negated_head_always_holds(self):
        # ⊤ ⊑ ¬B with B ∉ Γ₀: the head always holds, clause dropped
        compiled = CompiledClauses(
            TypeKernel([]), [clause([], [NodeLabel("B", True)])]
        )
        assert compiled.rows == []
        assert list(compiled.consistent_bits()) == [0]

    def test_out_of_signature_positive_head_never_holds(self):
        # ⊤ ⊑ B with B ∉ Γ₀: the head literal folds away, leaving ⊤ ⊑ ⊥
        compiled = CompiledClauses(
            TypeKernel([]), [clause([], [NodeLabel("B")])]
        )
        assert compiled.rows == [(0, 0, 0, 0)]
        assert list(compiled.consistent_bits()) == []


class TestSingleName:
    def test_decode_both_polarities(self):
        kernel = TypeKernel(["A"])
        assert kernel.decode(0) == Type([NodeLabel("A", True)])
        assert kernel.decode(1) == Type([NodeLabel("A")])
        for bits in (0, 1):
            sigma = kernel.decode(bits)
            assert sigma.is_maximal_over(["A"])
            assert kernel.encode(sigma) == bits

    def test_decode_is_cached(self):
        kernel = TypeKernel(["A"])
        assert kernel.decode(1) is kernel.decode(1)

    def test_a_implies_bottom(self):
        compiled = CompiledClauses(
            TypeKernel(["A"]), [clause([NodeLabel("A")], [])]
        )
        assert list(compiled.consistent_bits()) == [0]

    def test_top_implies_a(self):
        compiled = CompiledClauses(
            TypeKernel(["A"]), [clause([], [NodeLabel("A")])]
        )
        assert list(compiled.consistent_bits()) == [1]

    def test_tautology_keeps_both_types(self):
        # A ⊑ A never fires inconsistently
        compiled = CompiledClauses(
            TypeKernel(["A"]), [clause([NodeLabel("A")], [NodeLabel("A")])]
        )
        assert list(compiled.consistent_bits()) == [0, 1]

    def test_contradictory_body_never_fires(self):
        # A ⊓ ¬A ⊑ ⊥: the body is unsatisfiable on a maximal type
        compiled = CompiledClauses(
            TypeKernel(["A"]),
            [clause([NodeLabel("A"), NodeLabel("A", True)], [])],
        )
        assert list(compiled.consistent_bits()) == [0, 1]
