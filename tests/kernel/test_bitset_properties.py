"""Property tests: the bitset kernel agrees with the frozenset reference.

Random clausal TBoxes over signatures up to |Γ₀| = 10; the kernel's
compiled-clause evaluation, encode/decode round-trip, refinement test, and
consistent-type enumeration must match the original frozenset
implementations literal for literal.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl.normalize import ClauseCI, NormalizedTBox
from repro.dl.types import clause_consistent, clause_consistent_reference
from repro.graphs.labels import NodeLabel
from repro.graphs.types import Type, maximal_types
from repro.kernel.bitset import CompiledClauses, TypeKernel, inert_partition

NAMES = [f"A{i}" for i in range(10)]


@st.composite
def signatures(draw):
    size = draw(st.integers(min_value=1, max_value=10))
    return NAMES[:size]


@st.composite
def literals(draw, names):
    name = draw(st.sampled_from(names))
    negated = draw(st.booleans())
    return NodeLabel(name, negated)


@st.composite
def clauses(draw, names):
    body = draw(st.lists(literals(names), max_size=3))
    head = draw(st.lists(literals(names), max_size=3))
    return ClauseCI(frozenset(body), frozenset(head))


@st.composite
def tboxes(draw, names):
    clause_list = draw(st.lists(clauses(names), max_size=5))
    return NormalizedTBox(
        clauses=clause_list, universals=[], at_leasts=[], at_mosts=[],
        name="prop",
    )


@st.composite
def instances(draw):
    names = draw(signatures())
    tbox = draw(tboxes(names))
    bits = draw(st.integers(min_value=0, max_value=2 ** len(names) - 1))
    return names, tbox, bits


@settings(max_examples=200, deadline=None)
@given(instances())
def test_kernel_clause_eval_matches_reference(instance):
    names, tbox, bits = instance
    kernel = TypeKernel(names)
    compiled = CompiledClauses(kernel, tbox.clauses)
    sigma = kernel.decode(bits)
    assert compiled.consistent(bits) == clause_consistent_reference(tbox, sigma)
    # and the public entry point (which routes through the kernel) agrees
    assert clause_consistent(tbox, sigma) == clause_consistent_reference(tbox, sigma)


@settings(max_examples=200, deadline=None)
@given(instances())
def test_encode_decode_roundtrip(instance):
    names, _tbox, bits = instance
    kernel = TypeKernel(names)
    sigma = kernel.decode(bits)
    assert kernel.encode(sigma) == bits
    assert sigma.is_maximal_over(names)
    assert sigma.signature() == frozenset(names)


@settings(max_examples=200, deadline=None)
@given(instances(), st.data())
def test_refines_matches_frozenset_subset(instance, data):
    names, _tbox, bits = instance
    kernel = TypeKernel(names)
    sigma = kernel.decode(bits)
    partial_literals = data.draw(
        st.lists(literals(names), max_size=len(names), unique_by=lambda l: l.name)
    )
    partial = Type(partial_literals)
    pos, neg = kernel.encode_partial(partial)
    assert kernel.refines(bits, pos, neg) == (partial <= sigma)


@settings(max_examples=100, deadline=None)
@given(instances())
def test_consistent_enumeration_matches_filtering(instance):
    names, tbox, _bits = instance
    kernel = TypeKernel(names)
    compiled = CompiledClauses(kernel, tbox.clauses)
    via_kernel = {kernel.decode(bits) for bits in compiled.consistent_bits()}
    via_reference = {
        sigma
        for sigma in maximal_types(names)
        if clause_consistent_reference(tbox, sigma)
    }
    assert via_kernel == via_reference


@settings(max_examples=100, deadline=None)
@given(instances())
def test_inert_partition_counts_product_factor(instance):
    names, tbox, _bits = instance
    core, inert, count = inert_partition(tbox, names, seeds=[names[0]])
    assert set(core) | set(inert) == set(names)
    assert not set(core) & set(inert)
    # |consistent types over names| == |consistent core types| × count
    kernel = TypeKernel(names)
    full = sum(1 for _ in CompiledClauses(kernel, tbox.clauses).consistent_bits())
    core_kernel = TypeKernel(core)
    core_clauses = [
        cl
        for cl in tbox.clauses
        if all(l.name in set(core) for l in cl.body | cl.head)
    ]
    core_count = sum(
        1 for _ in CompiledClauses(core_kernel, core_clauses).consistent_bits()
    )
    assert full == core_count * count
