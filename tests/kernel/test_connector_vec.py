"""Connector vec scanner + batched-oracle plumbing.

Covers: scan order/verdict/examined-pick equality against the scalar
connector loop, the eager candidate-space guard (fires before any column
matrix is allocated), the backend-downgrade reason counters, and the
negated-counter end-to-end acceptance run (`TwoWayResult.backend == "vec"`
with `kernel.backend.fallback.negated_counters` untouched).
"""

import itertools

import pytest

import repro.core.twoway as twoway
import repro.dl.fragments as fragments
from repro.core.search import SearchLimits
from repro.core.twoway import (
    ProcedureInfeasible,
    TwoWayConfig,
    _connector_exists,
    _resolve_with_reason,
    realizable_refuting_twoway,
)
from repro.dl.normalize import (
    AtLeastCI,
    AtMostCI,
    NormalizedTBox,
    UniversalCI,
    normalize,
)
from repro.dl.tbox import TBox
from repro.graphs.labels import NodeLabel, Role
from repro.graphs.types import Type
from repro.kernel import vec
from repro.kernel.vec import HAVE_NUMPY, VEC_MAX_ROWS, resolve_backend
from repro.obs import REGISTRY, counter_delta
from repro.queries.parser import parse_query

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed; vec backend unavailable"
)

R = Role("r")
NAMES = ["A", "B", "C"]


def _maximal_pool():
    """All 8 maximal types over A, B, C."""
    return [
        Type([NodeLabel(nm, not (bits >> i) & 1) for i, nm in enumerate(NAMES)])
        for bits in range(8)
    ]


def _connector_tboxes():
    return {
        "bare": NormalizedTBox(
            clauses=[], universals=[],
            at_leasts=[AtLeastCI(NodeLabel("A"), 1, R, NodeLabel("B"))],
            at_mosts=[], name="cv1",
        ),
        "univ": NormalizedTBox(
            clauses=[],
            universals=[UniversalCI(NodeLabel("A"), R, NodeLabel("C", True))],
            at_leasts=[AtLeastCI(NodeLabel("A"), 2, R, NodeLabel("B"))],
            at_mosts=[], name="cv2",
        ),
        "atmost": NormalizedTBox(
            clauses=[], universals=[],
            at_leasts=[
                AtLeastCI(NodeLabel("A"), 1, R, NodeLabel("B")),
                AtLeastCI(NodeLabel("A"), 1, R, NodeLabel("C")),
            ],
            at_mosts=[AtMostCI(NodeLabel("A"), 2, R, NodeLabel("B"))],
            name="cv3",
        ),
    }


@needs_numpy
def test_scan_matches_scalar_verdict_order_and_counts(monkeypatch):
    """Across TBox shapes × queries × centres the scanner must reproduce the
    scalar loop's verdict AND its examined-pick count — equal counts on
    equal verdicts prove the first-success index (enumeration order) is
    preserved, which is what keeps memo contents and countermodels
    backend-independent."""
    monkeypatch.setattr(twoway, "VEC_SCAN_MIN_CANDIDATES", 1)
    pool = _maximal_pool()
    queries = {
        "edge": parse_query("A(x), r(x,y), B(y)"),
        "node": parse_query("C(x)"),
        "disj": parse_query("B(x); A(x), r(x,y), C(y)"),
    }
    centres = [Type.of("A"), Type.of("A", "C"), Type.of("B")]
    found_some = False
    for tbox, query, centre in itertools.product(
        _connector_tboxes().values(), queries.values(), centres
    ):
        outcomes = {}
        for backend in ("bitset", "vec"):
            counters = {"witnesses_materialized": 0, "cache_hits": 0, "types_checked": 0}
            found = _connector_exists(
                centre, pool, tbox, query, [R], max_leaves=2,
                max_candidates=500_000, counters=counters, backend=backend,
            )
            outcomes[backend] = (found, counters["witnesses_materialized"])
        assert outcomes["bitset"] == outcomes["vec"]
        found_some = found_some or outcomes["bitset"][0]
    assert found_some  # the grid must exercise the first-success path


@needs_numpy
def test_oversized_space_fails_before_scanner_allocates(monkeypatch):
    """The ProcedureInfeasible guard must fire eagerly — before the vec
    scanner materializes any column matrix."""
    monkeypatch.setattr(twoway, "VEC_SCAN_MIN_CANDIDATES", 1)

    def boom(*_args, **_kwargs):  # pragma: no cover - guard must preempt this
        raise AssertionError("scanner constructed despite the space guard")

    monkeypatch.setattr(twoway, "ConnectorVecScanner", boom)
    tbox = _connector_tboxes()["bare"]
    with pytest.raises(ProcedureInfeasible, match="connector candidate space"):
        _connector_exists(
            Type.of("A"), _maximal_pool(), tbox,
            parse_query("C(x)"), [R], max_leaves=3,
            max_candidates=5, backend="vec",
        )


@needs_numpy
def test_forced_scan_twoway_end_to_end_matches_bitset(monkeypatch):
    """A counting TBox whose T_c carries fresh-name definitions, run with
    the scan threshold at 1 so every connector search goes through the
    scanner: verdict, stats (incl. witnesses), and survivors identical."""
    raw = TBox.of([("A", ">=2 r.B"), ("B", "C"), ("C", "<=3 r.B")], name="scan")
    tbox = normalize(raw)
    query = parse_query("A(x), r(x,y), B(y)")
    monkeypatch.setattr(twoway, "VEC_SCAN_MIN_CANDIDATES", 1)
    results = {}
    for backend in ("bitset", "vec"):
        config = TwoWayConfig(
            limits=SearchLimits(max_nodes=3, max_steps=500),
            max_types=2**20, max_connector_candidates=500_000, backend=backend,
        )
        results[backend] = realizable_refuting_twoway(
            Type.of("A"), tbox, query, config=config
        )
    bits, vecr = results["bitset"], results["vec"]
    assert bits.realizable == vecr.realizable
    assert bits.stats == vecr.stats
    assert bits.survivors == vecr.survivors
    assert vecr.backend == "vec"


@needs_numpy
def test_negated_counter_labels_run_on_vec(monkeypatch):
    """Acceptance: with the complemented-column encoding, a P1/P2 instance
    whose factorization emits *negated* counter labels stays on the vec
    backend (no `negated_counters` fallback) and matches bitset bit for
    bit."""
    orig = fragments.counter_label

    def negated_counters(i, role, filler, tag):
        label = orig(i, role, filler, tag)
        return NodeLabel(label.name, i % 2 == 1)

    monkeypatch.setattr(fragments, "counter_label", negated_counters)
    tbox = normalize(TBox.of([("A", ">=1 r.B")], name="negc"))
    query = parse_query("A(x), r(x,y), B(y)")
    before = REGISTRY.counters_snapshot()
    results = {}
    for backend in ("bitset", "vec"):
        config = TwoWayConfig(
            limits=SearchLimits(max_nodes=3, max_steps=500),
            max_types=2**20, backend=backend,
        )
        results[backend] = realizable_refuting_twoway(
            Type.of("A"), tbox, query, config=config
        )
    delta = counter_delta(before, REGISTRY.counters_snapshot())
    bits, vecr = results["bitset"], results["vec"]
    assert bits.realizable == vecr.realizable
    assert bits.stats == vecr.stats
    assert bits.survivors == vecr.survivors
    assert vecr.backend == "vec"
    assert delta.get("kernel.backend.fallback.negated_counters", 0) == 0


def test_downgrade_records_negated_counters_reason():
    """A name collision involving a negated counter label downgrades the
    fixpoint to bitset and counts the reason."""
    config = TwoWayConfig(backend="auto")
    before = REGISTRY.counters_snapshot()
    chosen = _resolve_with_reason(
        config, ["A0"], [[NodeLabel("A0", True)]], total=8
    )
    delta = counter_delta(before, REGISTRY.counters_snapshot())
    assert chosen == "bitset"
    assert delta.get("kernel.backend.fallback.negated_counters") == 1


def test_downgrade_not_recorded_when_bitset_requested():
    config = TwoWayConfig(backend="bitset")
    before = REGISTRY.counters_snapshot()
    _resolve_with_reason(config, ["A0"], [[NodeLabel("A0", True)]], total=8)
    delta = counter_delta(before, REGISTRY.counters_snapshot())
    assert delta.get("kernel.backend.fallback.negated_counters", 0) == 0


def test_resolve_backend_records_table_too_large():
    before = REGISTRY.counters_snapshot()
    assert resolve_backend("auto", VEC_MAX_ROWS * 2) == "bitset"
    delta = counter_delta(before, REGISTRY.counters_snapshot())
    assert delta.get("kernel.backend.fallback.table_too_large") == 1


def test_resolve_backend_records_numpy_missing(monkeypatch):
    monkeypatch.setattr(vec, "HAVE_NUMPY", False)
    before = REGISTRY.counters_snapshot()
    assert resolve_backend("auto", 2**20) == "bitset"
    delta = counter_delta(before, REGISTRY.counters_snapshot())
    assert delta.get("kernel.backend.fallback.numpy_missing") == 1
    assert delta.get("kernel.backend.auto_fallback") == 1
