"""Parallel fan-out smoke: workers > 1 must reproduce serial results.

The CI-smoke requirement: ``python -m repro contain --preset example11
--workers 2`` returns the same verdict as the serial run, plus
library-level equality checks for every engine that accepts ``workers``.
"""

from repro.cli import main
from repro.core.containment import ContainmentOptions, is_contained
from repro.core.reduction import ReductionConfig, contains_via_reduction
from repro.core.sparse_search import contained_without_participation
from repro.dl.normalize import normalize
from repro.dl.pg_schema import figure1_schema
from repro.dl.tbox import TBox
from repro.kernel.parallel import first_success, parallel_map, resolve_workers
from repro.queries.parser import parse_query
from repro.queries.presets import example_11_q1, example_11_q2


class TestCliPreset:
    def test_example11_workers_match_serial(self, capsys):
        serial_code = main(["contain", "--preset", "example11"])
        serial_out = capsys.readouterr().out
        parallel_code = main(["contain", "--preset", "example11", "--workers", "2"])
        parallel_out = capsys.readouterr().out
        assert parallel_code == serial_code
        assert parallel_out == serial_out

    def test_preset_conflicts_with_queries(self):
        try:
            main(["contain", "A(x)", "--preset", "example11"])
        except SystemExit as exc:
            assert "preset" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected SystemExit")


class TestLibraryWorkers:
    def test_is_contained_verdicts_identical(self):
        lhs, rhs, tbox = example_11_q1(), example_11_q2(), figure1_schema()
        options = ContainmentOptions(use_cache=False)
        serial = is_contained(lhs, rhs, tbox, options=options)
        parallel = is_contained(lhs, rhs, tbox, options=options, workers=2)
        assert parallel.contained == serial.contained
        assert parallel.complete == serial.complete
        assert parallel.method == serial.method
        assert parallel.seeds_tried == serial.seeds_tried

    def test_sparse_workers_identical(self):
        tbox = normalize(TBox.of([("A", "forall r.B")]))
        lhs = next(iter(parse_query("A(x), r(x,y)")))
        rhs = parse_query("C(y)")
        serial = contained_without_participation(lhs, rhs, tbox)
        parallel = contained_without_participation(lhs, rhs, tbox, workers=2)
        assert parallel.contained == serial.contained
        assert parallel.seeds_tried == serial.seeds_tried
        if serial.countermodel is not None:
            assert parallel.countermodel is not None

    def test_reduction_workers_identical(self):
        tbox = normalize(TBox.of([("A", "exists r.B")]))
        lhs = next(iter(parse_query("A(x)")))
        rhs = parse_query("C(x)")
        serial = contains_via_reduction(lhs, rhs, tbox)
        parallel = contains_via_reduction(
            lhs, rhs, tbox, config=ReductionConfig(workers=2)
        )
        assert parallel.contained == serial.contained
        assert parallel.complete == serial.complete


class TestPrimitives:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers("auto") >= 1

    def test_parallel_map_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=2) == [i * i for i in items]
        assert parallel_map(_square, items, workers=1) == [i * i for i in items]

    def test_first_success_serial_equivalent_winner(self):
        items = list(range(30))
        for workers in (1, 3):
            result, tried = first_success(
                _square, items, workers=workers, success=lambda r: r >= 49
            )
            assert result == 49
            assert tried == 8  # the serial loop tries 0..7
        result, tried = first_success(
            _square, items, workers=2, success=lambda r: r > 10_000
        )
        assert result is None
        assert tried == len(items)


def _square(x: int) -> int:
    return x * x
