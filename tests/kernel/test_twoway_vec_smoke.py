"""CI smoke for the twoway connector-scan benchmark (E22).

Runs ``benchmarks/bench_twoway_vec.py --quick`` — a trimmed row with the
scan threshold forced to 1 so the vectorized connector scan engages even
on the small pick space — and fails if the two backends diverge on any
verdict, pipeline stat, survivor set, or synthesized countermodel.
Speedup is not asserted here (timing noise on trimmed rows); the full
benchmark enforces the ≥3× floor.  Skips cleanly when numpy is not
installed.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.kernel.vec import HAVE_NUMPY

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_twoway_vec.py"


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed; vec backend unavailable")
def test_quick_twoway_vec_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"twoway vec smoke failed (exit {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "E22 FAILURE" not in proc.stderr
