"""Property tests: the vec (bit-matrix) backend agrees with the bitset
backend bit for bit.

Random small TBoxes and signatures; for each instance both backends must
produce the same consistent-type enumeration (same order included), the
same oneway elimination fixpoint (verdict, waves, per-wave counters,
survivor set), and the same twoway fixpoint (verdict, pipeline stats,
top-level survivors).  The vec backend is *forced* (``backend="vec"``)
rather than auto-selected, so these sizes — far below the auto threshold —
still exercise the vectorized paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oneway import realizable_refuting_oneway
from repro.core.search import SearchLimits
from repro.core.twoway import TwoWayConfig, _enumerate_types, realizable_refuting_twoway
from repro.dl.normalize import ClauseCI, NormalizedTBox, normalize
from repro.dl.tbox import TBox
from repro.graphs.labels import NodeLabel
from repro.graphs.types import Type
from repro.kernel.bitset import CompiledClauses, TypeKernel
from repro.kernel.vec import HAVE_NUMPY
from repro.queries.parser import parse_query

if not HAVE_NUMPY:  # pragma: no cover - exercised only in numpy-less envs
    pytest.skip("numpy not installed; vec backend unavailable", allow_module_level=True)

import numpy as np

from repro.kernel.vec import VecClauseMatrix, enumerate_consistent_table, unpack_row
from repro.kernel.vec_fixpoint import TwowayVecEnumerator, vec_fallback_reason

NAMES = [f"A{i}" for i in range(8)]


@st.composite
def signatures(draw):
    size = draw(st.integers(min_value=1, max_value=8))
    return NAMES[:size]


@st.composite
def literals(draw, names):
    name = draw(st.sampled_from(names))
    negated = draw(st.booleans())
    return NodeLabel(name, negated)


@st.composite
def clauses(draw, names):
    body = draw(st.lists(literals(names), max_size=3))
    head = draw(st.lists(literals(names), max_size=3))
    return ClauseCI(frozenset(body), frozenset(head))


@st.composite
def tboxes(draw, names):
    clause_list = draw(st.lists(clauses(names), max_size=5))
    return NormalizedTBox(
        clauses=clause_list, universals=[], at_leasts=[], at_mosts=[],
        name="vecprop",
    )


@st.composite
def instances(draw):
    names = draw(signatures())
    tbox = draw(tboxes(names))
    return names, tbox


@settings(max_examples=100, deadline=None)
@given(instances())
def test_enumeration_matches_bitset(instance):
    names, tbox = instance
    compiled = CompiledClauses(TypeKernel(names), tbox.clauses)
    table = enumerate_consistent_table(compiled)
    via_vec = [unpack_row(row) for row in table]
    via_bitset = list(compiled.consistent_bits())
    # same types in the same (increasing-integer) order
    assert via_vec == via_bitset


@settings(max_examples=100, deadline=None)
@given(instances())
def test_filter_consistent_equals_masked_select(instance):
    names, tbox = instance
    compiled = CompiledClauses(TypeKernel(names), tbox.clauses)
    matrix = VecClauseMatrix(compiled)
    all_rows = np.arange(1 << len(names), dtype=np.uint64).reshape(-1, 1)
    via_filter = matrix.filter_consistent(all_rows)
    via_mask = all_rows[matrix.consistent_mask(all_rows)]
    assert np.array_equal(via_filter, via_mask)


def _oneway_fingerprint(result):
    return (
        result.realizable,
        result.iterations,
        tuple(result.type_counts),
        result.complete,
        tuple(result.gamma),
        tuple(tuple(sorted(stats.items())) for stats in result.round_stats),
        frozenset(result.survivors),
    )


@settings(max_examples=25, deadline=None)
@given(instances())
def test_oneway_fixpoint_matches_bitset(instance):
    names, tbox = instance
    tau = Type.of(names[0])
    query = parse_query(f"{names[0]}(x), r(x,y), {names[-1]}(y)")
    limits = SearchLimits(max_nodes=3, max_steps=500)
    results = {}
    for backend in ("bitset", "vec"):
        results[backend] = realizable_refuting_oneway(
            tau, tbox, query, limits=limits, max_types=2**16, backend=backend
        )
    assert results["bitset"].backend == "bitset"
    assert results["vec"].backend == "vec"
    assert _oneway_fingerprint(results["bitset"]) == _oneway_fingerprint(results["vec"])


@st.composite
def counter_spaces(draw):
    """Free names + counter groups with random signs on distinct names —
    the shapes the complemented-column encoding must reproduce exactly."""
    free = NAMES[: draw(st.integers(min_value=0, max_value=3))]
    groups = []
    serial = 0
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        group = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            group.append(NodeLabel(f"Cnt{serial}", draw(st.booleans())))
            serial += 1
        groups.append(group)
    return free, groups


@settings(max_examples=100, deadline=None)
@given(counter_spaces())
def test_enumerator_matches_scalar_with_negated_counters(space):
    free, groups = space
    # distinct names are always vectorizable, negated labels included
    assert vec_fallback_reason(free, groups) is None
    enum = TwowayVecEnumerator(free, groups)
    via_vec = enum.types_where(enum.new_mask(True))
    via_scalar = list(_enumerate_types(free, groups, 2**16))
    assert via_vec == via_scalar


def test_fallback_reason_classifies_collisions():
    pos, neg = NodeLabel("A0"), NodeLabel("A0", True)
    assert vec_fallback_reason(["A0"], [[neg]]) == "negated_counters"
    assert vec_fallback_reason([], [[pos], [pos]]) == "counter_collision"
    assert vec_fallback_reason(["A1"], [[pos, NodeLabel("A2", True)]]) is None


@st.composite
def alcq_tboxes(draw):
    """Small raw TBoxes mixing clause chains with an optional at-least, so
    the twoway pipeline sees both vectorizable and counter-bearing cases."""
    size = draw(st.integers(min_value=2, max_value=3))
    names = NAMES[:size]
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(names), st.sampled_from(names)),
            max_size=2,
        )
    )
    cis = [(a, b) for a, b in pairs if a != b]
    if draw(st.booleans()):
        cis.append((names[0], f">=1 r.{names[-1]}"))
    return names, TBox.of(cis, name="vecprop2")


@settings(max_examples=10, deadline=None)
@given(alcq_tboxes())
def test_twoway_fixpoint_matches_bitset(instance):
    names, raw = instance
    tbox = normalize(raw)
    tau = Type.of(names[0])
    query = parse_query(f"{names[0]}(x), r(x,y), {names[-1]}(y)")
    results = {}
    for backend in ("bitset", "vec"):
        config = TwoWayConfig(
            limits=SearchLimits(max_nodes=3, max_steps=500),
            max_types=2**16,
            backend=backend,
        )
        results[backend] = realizable_refuting_twoway(tau, tbox, query, config=config)
    bits, vec = results["bitset"], results["vec"]
    assert bits.realizable == vec.realizable
    assert bits.complete == vec.complete
    assert bits.stats == vec.stats
    assert bits.survivors == vec.survivors


@settings(max_examples=10, deadline=None)
@given(alcq_tboxes())
def test_twoway_batched_oracles_match_fresh_configs(instance):
    """A shared config batches the P1/P2/base oracles through the per-context
    fixpoint memos; verdicts must match per-type runs with fresh configs,
    on both backends."""
    names, raw = instance
    tbox = normalize(raw)
    query = parse_query(f"{names[0]}(x), r(x,y), {names[-1]}(y)")
    taus = [Type.of(name) for name in names]

    def run(backend, shared):
        limits = SearchLimits(max_nodes=3, max_steps=500)
        config = TwoWayConfig(limits=limits, max_types=2**16, backend=backend)
        verdicts = []
        for tau in taus:
            if not shared:
                config = TwoWayConfig(
                    limits=limits, max_types=2**16, backend=backend
                )
            verdicts.append(
                realizable_refuting_twoway(tau, tbox, query, config=config).realizable
            )
        return verdicts

    batched_vec = run("vec", shared=True)
    assert batched_vec == run("vec", shared=False)
    assert batched_vec == run("bitset", shared=True)
    assert batched_vec == run("bitset", shared=False)
