"""CI smoke for the vec-vs-bitset kernel benchmark (E21).

Runs ``benchmarks/bench_vec_kernel.py --quick`` — trimmed A/B rows — and
fails if the two backends diverge on any verdict, wave count, per-wave
work counter, survivor set, or synthesized countermodel.  Speedup is not
asserted here (timing noise on trimmed rows); the full benchmark enforces
the ≥5× floor.  Skips cleanly when numpy is not installed.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.kernel.vec import HAVE_NUMPY

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_vec_kernel.py"


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed; vec backend unavailable")
def test_quick_vec_kernel_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"vec kernel smoke failed (exit {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "E21 FAILURE" not in proc.stderr
