"""End-to-end decision tracing: explain() on Example 1.1 and Fig. 1."""

import pytest

from repro.core.containment import ContainmentOptions, is_contained
from repro.core.reduction import ReductionConfig
from repro.dl.pg_schema import figure1_schema
from repro.obs import chrome_trace, uninstall
from repro.queries.presets import example_11_q1, example_11_q2


@pytest.fixture(autouse=True)
def _clean_collector():
    uninstall()
    yield
    uninstall()


class TestExplainExample11:
    @pytest.fixture(scope="class")
    def traced(self):
        # bypass the decision memo: a warm hit (e.g. from an earlier test in
        # the same process) would collapse the trace into one cached span
        return is_contained(
            example_11_q1(), example_11_q2(), figure1_schema(), trace=True,
            options=ContainmentOptions(use_cache=False),
        )

    def test_trace_attached(self, traced):
        assert traced.trace is not None
        assert traced.trace.trace_id.startswith("d-")
        assert traced.trace_counters is not None

    def test_explain_reports_phases_and_verdict(self, traced):
        report = traced.explain()
        assert "CONTAINED" in report
        assert "phase breakdown" in report
        assert "decision" in report
        assert "search" in report
        assert "%" in report

    def test_explain_reports_counters(self, traced):
        report = traced.explain()
        assert "counters (this decision)" in report
        assert "search.runs" in report

    def test_untraced_result_explains_its_absence(self):
        result = is_contained("A(x)", "A(x)", figure1_schema())
        assert result.trace is None
        assert "no trace recorded" in result.explain()


class TestExplainFigure1Reduction:
    """The acceptance-criterion decision: a Fig. 1 reduction run must show
    correctly nested reduction → elimination → search spans."""

    @pytest.fixture(scope="class")
    def traced(self):
        options = ContainmentOptions(
            use_cache=False, reduction=ReductionConfig(use_tp_memo=False)
        )
        return is_contained(
            "Customer(x)", "PremCC(y)", figure1_schema(),
            method="reduction", options=options, trace=True,
        )

    def test_verdict_has_countermodel(self, traced):
        assert not traced.contained
        assert traced.countermodel is not None

    def test_reduction_elimination_search_nesting(self, traced):
        # depth-first walk: each span knows its ancestors through the path
        paths = []
        stack = []
        for node, depth in traced.trace.walk():
            del stack[depth:]
            stack.append(node.name)
            paths.append(list(stack))
        # some elimination span sits below reduction and contains a search
        assert any(
            "reduction" in path and path[-1] == "elimination" for path in paths
        )
        assert any(
            "elimination" in path and path[-1] == "search" for path in paths
        )

    def test_chrome_trace_is_valid(self, traced):
        doc = chrome_trace(traced.trace)
        names = [event["name"] for event in doc["traceEvents"]]
        assert "reduction" in names
        assert "elimination" in names
        assert "search" in names
        assert all(event["ph"] == "X" for event in doc["traceEvents"])

    def test_explain_mentions_all_phases(self, traced):
        report = traced.explain()
        for phase in ("decision", "reduction", "elimination", "search"):
            assert phase in report


class TestTracingIsPassive:
    def test_traced_and_untraced_results_identical(self):
        options = ContainmentOptions(use_cache=False)
        args = ("Customer(x), owns(x,y)", "owns(x,y), CredCard(y)", figure1_schema())
        plain = is_contained(*args, options=options)
        traced = is_contained(*args, options=options, trace=True)
        assert (plain.contained, plain.complete, plain.method, plain.seeds_tried) == (
            traced.contained, traced.complete, traced.method, traced.seeds_tried,
        )
        assert (plain.countermodel is None) == (traced.countermodel is None)
        if plain.countermodel is not None:
            assert plain.countermodel.describe() == traced.countermodel.describe()
        # dataclass equality ignores the trace fields by design
        assert plain == traced

    def test_memoized_results_never_carry_traces(self):
        options = ContainmentOptions()  # use_cache=True
        args = ("Customer(x)", "Customer(x)", figure1_schema())
        first = is_contained(*args, options=options, trace=True)
        assert first.trace is not None
        second = is_contained(*args, options=options)
        assert second.trace is None

    def test_decision_id_is_deterministic(self):
        from repro.core.containment import decision_id

        a = decision_id("A(x)", "B(x)", figure1_schema())
        b = decision_id("A(x)", "B(x)", figure1_schema())
        assert a == b
        assert a.startswith("d-")
        assert decision_id("A(x)", "C(x)", figure1_schema()) != a
