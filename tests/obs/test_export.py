"""Chrome trace_event schema and JSONL event-log export."""

import json

import pytest

from repro.obs import (
    CounterRegistry,
    chrome_trace,
    jsonl_events,
    span,
    tracing,
    uninstall,
    write_chrome_trace,
    write_jsonl_events,
)


@pytest.fixture(autouse=True)
def _clean_collector():
    uninstall()
    yield
    uninstall()


@pytest.fixture()
def tracer():
    with tracing("d-abc", registry=CounterRegistry()) as tr:
        with span("decision", method="direct"):
            with span("search", steps=3):
                pass
            with span("search", steps=5):
                pass
    return tr


class TestChromeTrace:
    def test_document_shape(self, tracer):
        doc = chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["trace_id"] == "d-abc"

    def test_events_are_complete_events(self, tracer):
        for event in chrome_trace(tracer)["traceEvents"]:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["dur"] >= 0.0
            assert event["ts"] >= 0.0

    def test_event_order_and_args(self, tracer):
        events = chrome_trace(tracer)["traceEvents"]
        assert [e["name"] for e in events] == ["decision", "search", "search"]
        assert [e["args"]["seq"] for e in events] == [0, 1, 2]
        assert events[0]["args"]["method"] == "direct"
        assert events[1]["args"]["steps"] == 3
        assert all(e["args"]["trace_id"] == "d-abc" for e in events)

    def test_timestamps_in_microseconds_nest(self, tracer):
        decision, search1, _search2 = chrome_trace(tracer)["traceEvents"]
        # child interval contained in parent interval (Chrome reconstructs
        # nesting from ts/dur containment)
        assert decision["ts"] <= search1["ts"]
        assert search1["ts"] + search1["dur"] <= decision["ts"] + decision["dur"] + 1e-6

    def test_write_round_trip(self, tracer, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(out))
        loaded = json.loads(out.read_text())
        assert [e["name"] for e in loaded["traceEvents"]] == [
            "decision", "search", "search",
        ]

    def test_content_deterministic_across_runs(self):
        def run():
            with tracing("d-same", registry=CounterRegistry()) as tr:
                with span("a", k=1):
                    with span("b"):
                        pass
            events = chrome_trace(tr)["traceEvents"]
            # strip the timing-only fields; everything else must be stable
            return [
                {k: v for k, v in e.items() if k not in ("ts", "dur")}
                for e in events
            ]

        assert run() == run()


class TestJsonlEvents:
    def test_one_valid_json_line_per_span(self, tracer):
        lines = list(jsonl_events(tracer))
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["decision", "search", "search"]
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_paths_reflect_nesting(self, tracer):
        records = [json.loads(line) for line in jsonl_events(tracer)]
        assert records[0]["path"] == "decision"
        assert records[1]["path"] == "decision/search"
        assert records[1]["depth"] == 1

    def test_write_jsonl(self, tracer, tmp_path):
        out = tmp_path / "events.jsonl"
        write_jsonl_events(tracer, str(out))
        lines = out.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["event"] == "span" for line in lines)
