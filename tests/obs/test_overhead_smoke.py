"""CI smoke for the observability-overhead benchmark (E19).

Runs ``benchmarks/bench_obs_overhead.py --quick`` — trimmed E5/E7
workloads — and fails if the estimated disabled-tracing overhead breaches
the budget, a traced run diverges from its untraced twin, or the Fig. 1
reduction decision stops producing correctly nested
reduction → elimination → search spans.
"""

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_obs_overhead.py"


def test_quick_obs_overhead_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"obs overhead smoke failed (exit {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "E19 FAILURE" not in proc.stderr
