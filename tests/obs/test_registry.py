"""Counter registry: counters, probes, weakrefs, deltas, snapshots."""

import gc

from repro.kernel.memo import BoundedMemo
from repro.obs import CounterRegistry, counter_delta


class TestCounters:
    def test_inc_and_get(self):
        registry = CounterRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.get("a") == 5
        assert registry.get("missing") == 0

    def test_inc_many_skips_zeros(self):
        registry = CounterRegistry()
        registry.inc_many({"a": 2, "b": 0, "c": 1})
        snap = registry.snapshot()["counters"]
        assert snap == {"a": 2, "c": 1}

    def test_reset_clears_counters_keeps_probes(self):
        registry = CounterRegistry()
        registry.inc("a")
        registry.register_probe("p", lambda: {"x": 9})
        registry.reset()
        snap = registry.snapshot()["counters"]
        assert snap == {"p.x": 9}


class TestProbes:
    def test_probe_values_prefixed(self):
        registry = CounterRegistry()
        registry.register_probe("memo.test", lambda: {"hits": 3, "misses": 1})
        snap = registry.snapshot()["counters"]
        assert snap["memo.test.hits"] == 3
        assert snap["memo.test.misses"] == 1

    def test_raising_probe_contributes_nothing(self):
        registry = CounterRegistry()

        def bad():
            raise RuntimeError("sampler broken")

        registry.register_probe("bad", bad)
        registry.inc("ok")
        assert registry.snapshot()["counters"] == {"ok": 1}

    def test_object_probe_is_weak(self):
        registry = CounterRegistry()

        class Stats:
            def stats(self):
                return {"value": 1}

        obj = Stats()
        registry.register_object_probe("weak", obj)
        assert registry.snapshot()["counters"] == {"weak.value": 1}
        del obj
        gc.collect()
        assert registry.snapshot()["counters"] == {}

    def test_reregistering_replaces(self):
        registry = CounterRegistry()
        registry.register_probe("p", lambda: {"v": 1})
        registry.register_probe("p", lambda: {"v": 2})
        assert registry.snapshot()["counters"] == {"p.v": 2}

    def test_named_memo_registers_on_global_registry(self):
        from repro.obs import REGISTRY

        memo = BoundedMemo(max_entries=4, name="test_registry_probe")
        memo.get("missing")
        memo.put("k", "v")
        memo.get("k")
        counters = REGISTRY.snapshot()["counters"]
        assert counters["memo.test_registry_probe.hits"] == 1
        assert counters["memo.test_registry_probe.misses"] == 1
        assert counters["memo.test_registry_probe.entries"] == 1
        REGISTRY.unregister_probe("memo.test_registry_probe")

    def test_flushed_counters_exclude_probes(self):
        registry = CounterRegistry()
        registry.inc("flushed", 2)
        registry.register_probe("probe", lambda: {"v": 5})
        assert registry.flushed_counters() == {"flushed": 2}


class TestCounterDelta:
    def test_delta_drops_zero_change(self):
        before = {"a": 1, "b": 2}
        after = {"a": 1, "b": 5, "c": 3}
        assert counter_delta(before, after) == {"b": 3, "c": 3}

    def test_negative_deltas_kept(self):
        # a probe owner may be collected and re-created between snapshots
        assert counter_delta({"m.entries": 10}, {"m.entries": 4}) == {"m.entries": -6}

    def test_snapshot_sorted(self):
        registry = CounterRegistry()
        registry.inc("zz")
        registry.inc("aa")
        assert list(registry.snapshot()["counters"]) == ["aa", "zz"]
