"""Span nesting, exception safety, determinism, and pool-payload grafting."""

import pickle

import pytest

from repro.obs import (
    NULL_SPAN,
    CounterRegistry,
    PhaseAggregator,
    Tracer,
    active_collector,
    enabled,
    install,
    span,
    tracing,
    uninstall,
)


@pytest.fixture(autouse=True)
def _clean_collector():
    uninstall()
    yield
    uninstall()


class TestDisabledPath:
    def test_span_without_collector_is_the_null_singleton(self):
        assert span("anything") is NULL_SPAN
        assert span("other", attr=1) is NULL_SPAN

    def test_null_span_supports_the_full_protocol(self):
        with span("x") as sp:
            assert sp.set(foo=1) is sp
            assert not sp.recording

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with span("x"):
                raise ValueError("must propagate")

    def test_enabled_reflects_installation(self):
        assert not enabled()
        install(Tracer(registry=CounterRegistry()))
        assert enabled()
        uninstall()
        assert not enabled()


class TestNesting:
    def test_children_attach_in_open_order(self):
        with tracing(registry=CounterRegistry()) as tracer:
            with span("root"):
                with span("a"):
                    with span("a1"):
                        pass
                with span("b"):
                    pass
        (root,) = tracer.roots
        assert root.name == "root"
        assert [child.name for child in root.children] == ["a", "b"]
        assert [child.name for child in root.children[0].children] == ["a1"]

    def test_seq_is_open_order(self):
        with tracing(registry=CounterRegistry()) as tracer:
            with span("root"):
                with span("a"):
                    pass
                with span("b"):
                    pass
        names = {node.seq: node.name for node, _ in tracer.walk()}
        assert names == {0: "root", 1: "a", 2: "b"}

    def test_durations_nest(self):
        with tracing(registry=CounterRegistry()) as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        (outer,) = tracer.roots
        (inner,) = outer.children
        assert outer.dur_ms >= inner.dur_ms >= 0.0
        assert outer.own_ms == pytest.approx(outer.dur_ms - inner.dur_ms)

    def test_sibling_roots(self):
        with tracing(registry=CounterRegistry()) as tracer:
            with span("first"):
                pass
            with span("second"):
                pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_attrs_via_kwargs_and_set(self):
        with tracing(registry=CounterRegistry()) as tracer:
            with span("s", before=1) as sp:
                sp.set(after=2)
        (node,) = tracer.roots
        assert node.attrs == {"before": 1, "after": 2}


class TestExceptionSafety:
    def test_raising_span_still_closes_and_records(self):
        with tracing(registry=CounterRegistry()) as tracer:
            with pytest.raises(RuntimeError):
                with span("outer"):
                    with span("boom"):
                        raise RuntimeError("inner failure")
        (outer,) = tracer.roots
        (boom,) = outer.children
        assert boom.status == "error"
        assert boom.attrs["error"] == "RuntimeError"
        assert boom.dur_ms >= 0.0
        assert outer.status == "error"  # the exception traversed it too

    def test_spans_after_exception_attach_correctly(self):
        with tracing(registry=CounterRegistry()) as tracer:
            with span("root"):
                try:
                    with span("fails"):
                        raise ValueError()
                except ValueError:
                    pass
                with span("recovers"):
                    pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["fails", "recovers"]
        assert root.status == "ok"
        assert root.children[0].status == "error"
        assert root.children[1].status == "ok"

    def test_phase_observed_for_error_spans(self):
        registry = CounterRegistry()
        with tracing(registry=registry):
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError()
        phases = registry.snapshot()["phases"]
        assert phases["doomed"]["count"] == 1


class TestTracingContext:
    def test_restores_previous_collector(self):
        outer = install(PhaseAggregator(CounterRegistry()))
        with tracing(registry=CounterRegistry()) as tracer:
            assert active_collector() is tracer
        assert active_collector() is outer

    def test_trace_id_carried(self):
        with tracing("d-123", registry=CounterRegistry()) as tracer:
            pass
        assert tracer.trace_id == "d-123"
        assert tracer.payload()["trace_id"] == "d-123"


class TestPayloadGrafting:
    def _worker_payload(self):
        """Simulate a worker process: its own tracer, then a pickled payload."""
        worker_registry = CounterRegistry()
        with tracing("d-xyz", registry=worker_registry) as worker:
            with span("search", steps=7):
                pass
        payload = worker.payload()
        return pickle.loads(pickle.dumps(payload))  # crosses the pool pickled

    def test_absorb_grafts_under_open_span(self):
        payload = self._worker_payload()
        with tracing("d-xyz", registry=CounterRegistry()) as parent:
            with span("decision"):
                parent.absorb(payload)
        (decision,) = parent.roots
        (search,) = decision.children
        assert search.name == "search"
        assert search.attrs["steps"] == 7
        assert search.seq == 1  # grafted in task order after the open span

    def test_absorb_counters_merge_into_registry(self):
        payload = self._worker_payload()
        payload["counters"] = {"search.steps": 7}
        registry = CounterRegistry()
        with tracing(registry=registry) as parent:
            with span("decision"):
                parent.absorb(payload)
        assert registry.get("search.steps") == 7

    def test_phase_aggregator_absorbs_payloads(self):
        payload = self._worker_payload()
        payload["counters"] = {"search.steps": 7}
        registry = CounterRegistry()
        PhaseAggregator(registry).absorb(payload)
        snap = registry.snapshot()
        assert snap["phases"]["search"]["count"] == 1
        assert snap["counters"]["search.steps"] == 7


class TestPhaseAggregator:
    def test_aggregates_counts_and_totals_without_tree(self):
        registry = CounterRegistry()
        install(PhaseAggregator(registry))
        for _ in range(3):
            with span("decision"):
                with span("search"):
                    pass
        uninstall()
        phases = registry.snapshot()["phases"]
        assert phases["decision"]["count"] == 3
        assert phases["search"]["count"] == 3
        assert phases["decision"]["total_ms"] >= phases["search"]["total_ms"] >= 0.0
