"""Query algebra laws under Boolean evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import random_graph
from repro.queries.algebra import (
    conjoin,
    fresh_variable,
    standardize_apart,
    substitute,
    unite,
    variables_of,
)
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_crpq, parse_query

QUERIES = ["A(x), r(x,y)", "B(x)", "r(x,y), s(y,z)", "(r|s)*(x,y), A(y)"]


def graphs():
    return st.integers(0, 2000).map(
        lambda seed: random_graph(4, 6, ["A", "B"], ["r", "s"], seed=seed, label_probability=0.4)
    )


class TestStandardizeApart:
    def test_no_capture(self):
        left = parse_crpq("A(x), r(x,y)")
        right = parse_crpq("B(x), s(x,z)")
        a, b = standardize_apart(left, right)
        assert not (a.variables & b.variables)

    def test_disjoint_untouched(self):
        left = parse_crpq("A(x)")
        right = parse_crpq("B(w)")
        a, b = standardize_apart(left, right)
        assert a == left and b == right


class TestSemantics:
    @settings(max_examples=60, deadline=None)
    @given(graphs(), st.sampled_from(QUERIES), st.sampled_from(QUERIES))
    def test_conjunction_is_boolean_and(self, graph, left_text, right_text):
        left, right = parse_query(left_text), parse_query(right_text)
        both = conjoin(left, right)
        assert satisfies_union(graph, both) == (
            satisfies_union(graph, left) and satisfies_union(graph, right)
        )

    @settings(max_examples=60, deadline=None)
    @given(graphs(), st.sampled_from(QUERIES), st.sampled_from(QUERIES))
    def test_union_is_boolean_or(self, graph, left_text, right_text):
        left, right = parse_query(left_text), parse_query(right_text)
        either = unite(left, right)
        assert satisfies_union(graph, either) == (
            satisfies_union(graph, left) or satisfies_union(graph, right)
        )

    @settings(max_examples=30, deadline=None)
    @given(graphs(), st.sampled_from(QUERIES), st.sampled_from(QUERIES))
    def test_conjunction_commutes(self, graph, left_text, right_text):
        left, right = parse_query(left_text), parse_query(right_text)
        assert satisfies_union(graph, conjoin(left, right)) == satisfies_union(
            graph, conjoin(right, left)
        )

    def test_shared_variables_join(self):
        # sharing x: the same node must be both A and B
        from repro.graphs.graph import Graph

        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["B"])
        shared = conjoin(parse_query("A(x)"), parse_query("B(x)"), share_variables=True)
        independent = conjoin(parse_query("A(x)"), parse_query("B(x)"))
        assert not satisfies_union(g, shared)
        assert satisfies_union(g, independent)


class TestHelpers:
    def test_substitute(self):
        q = substitute(parse_query("A(x), r(x,y)"), {"x": "z"})
        assert "z" in {str(v) for v in variables_of(q)}
        assert "x" not in {str(v) for v in variables_of(q)}

    def test_fresh_variable(self):
        q = parse_query("A(v0), r(v0,v1)")
        assert fresh_variable(q) == "v2"
