"""Classical CQ containment and the query ↔ graph correspondence."""

import pytest

from repro.graphs.graph import Graph
from repro.queries.cq import (
    NotStarFree,
    canonical_graph,
    contained_cq,
    is_star_free,
    query_of_graph,
)
from repro.queries.evaluation import satisfies
from repro.queries.parser import parse_crpq, parse_query


class TestStarFree:
    def test_classification(self):
        assert is_star_free(parse_query("A(x), (r.s)(x,y)"))
        assert not is_star_free(parse_query("r*(x,y)"))

    def test_guard(self):
        with pytest.raises(NotStarFree):
            contained_cq(parse_query("r*(x,y)"), parse_query("r(x,y)"))


class TestContainment:
    def test_classical_examples(self):
        # a triangle query is contained in an edge query
        assert contained_cq(parse_query("r(x,y), r(y,z), r(z,x)"), parse_query("r(x,y)"))
        # but not conversely
        assert not contained_cq(parse_query("r(x,y)"), parse_query("r(x,y), r(y,z), r(z,x)"))

    def test_label_strengthening(self):
        assert contained_cq(parse_query("A(x), B(x), r(x,y)"), parse_query("A(x), r(x,y)"))
        assert not contained_cq(parse_query("A(x), r(x,y)"), parse_query("A(x), B(x), r(x,y)"))

    def test_path_shortening(self):
        long = parse_query("(r.r.r)(x,y)")
        short = parse_query("(r.r)(x,y)")
        assert contained_cq(long, short)  # Boolean: a 3-path contains a 2-path
        assert not contained_cq(short, long)

    def test_union_rhs(self):
        assert contained_cq(parse_query("r(x,y)"), parse_query("s(x,y); r(x,y)"))

    def test_self_containment(self):
        q = parse_query("A(x), (r.s)(x,y), B(y)")
        assert contained_cq(q, q)

    def test_agrees_with_bounded_baseline(self):
        from repro.core.baseline import contained_no_schema

        cases = [
            ("r(x,y), s(y,z)", "r(x,y)"),
            ("r(x,y)", "s(x,y)"),
            ("A(x), r(x,y)", "r(x,y), A(x)"),
            ("(r.r)(x,y)", "r(x,y), r(y,z)"),
        ]
        for lhs_text, rhs_text in cases:
            lhs, rhs = parse_query(lhs_text), parse_query(rhs_text)
            assert contained_cq(lhs, rhs) == contained_no_schema(lhs, rhs).contained


class TestCorrespondence:
    def test_canonical_graph_roundtrip(self):
        q = parse_crpq("A(x), r(x,y), B(y)")
        g = canonical_graph(q)
        assert g is not None
        assert satisfies(g, q)
        back = query_of_graph(g)
        g2 = canonical_graph(back)
        assert satisfies(g2, back) and satisfies(g, back)

    def test_non_cq_rejected(self):
        assert canonical_graph(parse_crpq("r*(x,y)")) is None
        assert canonical_graph(parse_crpq("(r|s)(x,y)")) is None

    def test_complement_atoms_ignored(self):
        g = canonical_graph(parse_crpq("A(x), !B(x)"))
        assert g is not None
        assert g.has_label(("v", "x"), "A")
        assert not g.has_label(("v", "x"), "B")

    def test_query_of_graph_matches_source(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1, ["B"])
        g.add_edge(0, "r", 1)
        q = query_of_graph(g)
        assert satisfies(g, q)
        # a graph missing the edge does not satisfy it
        g2 = Graph()
        g2.add_node(0, ["A"])
        g2.add_node(1, ["B"])
        assert not satisfies(g2, q)

    def test_entailment_as_containment(self):
        """The paper's remark: G, T ⊨fin Q iff query_of_graph(G) ⊆_T Q."""
        from repro.core.containment import is_contained
        from repro.core.entailment import finitely_entails
        from repro.dl.tbox import TBox

        g = Graph()
        g.add_node(0, ["A"])
        tbox = TBox.of([("A", "exists r.B")])
        rhs = parse_query("r(x,y), B(y)")
        ent = finitely_entails(g, tbox, rhs)
        cont = is_contained(
            __import__("repro.queries.ucrpq", fromlist=["UCRPQ"]).UCRPQ.single(query_of_graph(g)),
            rhs,
            tbox,
        )
        assert ent.entailed == cont.contained
