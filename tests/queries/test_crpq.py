"""C2RPQ and UC2RPQ structure: variables, connectivity, classification."""

from repro.queries.atoms import ConceptAtom, PathAtom
from repro.queries.crpq import CRPQ
from repro.queries.parser import parse_crpq, parse_query
from repro.queries.ucrpq import UCRPQ


class TestStructure:
    def test_variables(self):
        q = parse_crpq("A(x), r(x,y), B(y)")
        assert q.variables == {"x", "y"}

    def test_size_counts_atoms(self):
        assert parse_crpq("A(x), r(x,y), B(y)").size() == 3

    def test_deduplication(self):
        q = CRPQ.of([ConceptAtom.make("A", "x"), ConceptAtom.make("A", "x")])
        assert q.size() == 1

    def test_rename(self):
        q = parse_crpq("A(x), r(x,y)")
        renamed = q.rename({"x": "z"})
        assert renamed.variables == {"z", "y"}
        assert any(isinstance(a, ConceptAtom) and a.variable == "z" for a in renamed.atoms)

    def test_conjoin(self):
        q = parse_crpq("A(x)").conjoin(parse_crpq("B(y)"))
        assert q.variables == {"x", "y"}

    def test_isolated_variables(self):
        q = CRPQ.of([ConceptAtom.make("A", "x")], isolated=["z"])
        assert "z" in q.variables


class TestConnectivity:
    def test_connected(self):
        assert parse_crpq("A(x), r(x,y), s(y,z)").is_connected()

    def test_disconnected(self):
        assert not parse_crpq("A(x), B(y)").is_connected()

    def test_single_variable_connected(self):
        assert parse_crpq("A(x)").is_connected()

    def test_components(self):
        q = parse_crpq("A(x), r(x,y), B(z)")
        parts = q.connected_components()
        assert len(parts) == 2
        sizes = sorted(len(p.variables) for p in parts)
        assert sizes == [1, 2]


class TestClassification:
    def test_one_way(self):
        assert parse_crpq("r(x,y)").is_one_way()
        assert not parse_crpq("r-(x,y)").is_one_way()
        assert not parse_crpq("(r.s-)(x,y)").is_one_way()

    def test_simple(self):
        assert parse_crpq("r(x,y), (r|s)*(y,z)").is_simple()
        assert not parse_crpq("(r.s)(x,y)").is_simple()
        assert parse_crpq("(r|s-)*(x,y)").is_simple()

    def test_test_free(self):
        assert parse_crpq("(r.s)(x,y)").is_test_free()
        assert not parse_crpq("(r.{A}.s)(x,y)").is_test_free()

    def test_union_classification(self):
        q = parse_query("r(x,y); (r.s)(x,y)")
        assert not q.is_simple()
        assert q.is_one_way()
        assert q.is_connected()


class TestUnion:
    def test_union_dedup(self):
        a = parse_crpq("A(x)")
        assert len(UCRPQ.of([a, a])) == 1

    def test_max_disjunct_size(self):
        q = parse_query("A(x); A(x), r(x,y), B(y)")
        assert q.max_disjunct_size() == 3

    def test_label_and_role_names(self):
        q = parse_query("A(x), (r.{B}.s)(x,y)")
        assert q.node_label_names() == {"A", "B"}
        assert q.role_names() == {"r", "s"}

    def test_union_operation(self):
        q = parse_query("A(x)").union(parse_query("B(x)"))
        assert len(q) == 2
