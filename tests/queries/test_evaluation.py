"""Query evaluation over finite graphs, with a brute-force cross-check."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import cycle_graph, path_graph, random_graph
from repro.graphs.graph import Graph
from repro.queries.evaluation import (
    find_match,
    find_union_match,
    matches,
    pointed_satisfies,
    satisfies,
    satisfies_union,
)
from repro.queries.parser import parse_crpq, parse_query


def brute_force_satisfies(graph, query):
    """Try every variable assignment; check atoms by definition."""
    from repro.automata.product import rpq_holds

    nodes = graph.node_list()
    variables = sorted(query.variables, key=repr)
    if not variables:
        return True
    for assignment in product(nodes, repeat=len(variables)):
        binding = dict(zip(variables, assignment))
        ok = all(
            graph.has_label(binding[a.variable], a.label) for a in query.concept_atoms
        ) and all(
            rpq_holds(graph, a.compiled, binding[a.source], binding[a.target])
            for a in query.path_atoms
        )
        if ok:
            return True
    return False


class TestBasics:
    def test_simple_match(self):
        g = path_graph(2, "r", ["A"])
        assert satisfies(g, parse_crpq("A(x), r(x,y)"))
        assert not satisfies(g, parse_crpq("B(x)"))

    def test_match_assignment_valid(self):
        g = path_graph(2, "r", ["A"])
        match = find_match(g, parse_crpq("r(x,y), r(y,z)"))
        assert match == {"x": 0, "y": 1, "z": 2}

    def test_complement_atoms(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1)
        assert satisfies(g, parse_crpq("!A(x)"))
        match = find_match(g, parse_crpq("!A(x)"))
        assert match == {"x": 1}

    def test_same_variable_twice(self):
        g = cycle_graph(1, "r")  # a single self-loop
        assert satisfies(g, parse_crpq("r(x,x)"))
        g2 = path_graph(1, "r")
        assert not satisfies(g2, parse_crpq("r(x,x)"))

    def test_empty_graph(self):
        assert not satisfies(Graph(), parse_crpq("A(x)"))

    def test_match_enumeration(self):
        g = path_graph(3, "r")
        found = list(matches(g, parse_crpq("r*(x,y)")))
        assert len(found) == 10

    def test_fixed_variables(self):
        g = path_graph(3, "r")
        q = parse_crpq("r*(x,y)")
        pinned = list(matches(g, q, fixed={"x": 1}))
        assert all(m["x"] == 1 for m in pinned)
        assert len(pinned) == 3

    def test_pointed_satisfies(self):
        g = path_graph(2, "r", ["A"])
        q = parse_crpq("A(x), r(x,y)")
        assert pointed_satisfies(g, q, "y", 1)
        assert not pointed_satisfies(g, q, "y", 0)


class TestUnions:
    def test_union_any_disjunct(self):
        g = path_graph(1, "s")
        q = parse_query("r(x,y); s(x,y)")
        assert satisfies_union(g, q)
        disjunct, match = find_union_match(g, q)
        assert "s" in str(disjunct)

    def test_union_no_match(self):
        g = path_graph(1, "s")
        assert not satisfies_union(g, parse_query("r(x,y); A(x)"))


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.sampled_from(
            [
                "A(x), r(x,y)",
                "r(x,y), r(y,z)",
                "A(x), (r|s)*(x,y), B(y)",
                "r(x,y), s(y,x)",
                "!A(x), r(x,x)",
                "(r.s)(x,y), A(y)",
                "r-(x,y), B(y)",
            ]
        ),
    )
    def test_matches_brute_force(self, seed, query_text):
        graph = random_graph(4, 6, ["A", "B"], ["r", "s"], seed=seed)
        query = parse_crpq(query_text)
        assert satisfies(graph, query) == brute_force_satisfies(graph, query)
