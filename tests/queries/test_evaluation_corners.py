"""Corner cases of query evaluation: ε-accepting atoms, inverse roles at
graph boundaries, and repeated variables — cross-checked against the naive
evaluator, both one-shot and through the incremental evaluator."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import path_graph, random_graph
from repro.graphs.graph import Graph
from repro.queries.evaluation import find_union_match, matches, satisfies
from repro.queries.incremental import IncrementalUnionEvaluator
from repro.queries.parser import parse_crpq, parse_query

from tests.queries.test_evaluation import brute_force_satisfies


class TestEpsilonAcceptingAtoms:
    def test_star_matches_identically(self):
        g = Graph()
        g.add_node("a", ["A"])
        # r*(x,y) accepts ε: x = y on an edgeless graph
        assert satisfies(g, parse_crpq("r*(x,y)"))
        found = list(matches(g, parse_crpq("r*(x,y)")))
        assert found == [{"x": "a", "y": "a"}]

    def test_star_self_pair_with_label_guard(self):
        g = Graph()
        g.add_node("a", ["A"])
        g.add_node("b")
        assert satisfies(g, parse_crpq("A(x), r*(x,y), A(y)"))
        assert not satisfies(g, parse_crpq("B(x), r*(x,y)"))

    def test_epsilon_only_via_tests(self):
        # {A}(x,y) traverses no edge: it holds exactly at x = y with label A
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1)
        found = list(matches(g, parse_crpq("{A}(x,y)")))
        assert found == [{"x": 0, "y": 0}]

    def test_epsilon_atom_on_repeated_variable(self):
        g = Graph()
        g.add_node(0)
        assert satisfies(g, parse_crpq("r*(x,x)"))
        assert not satisfies(g, parse_crpq("r+(x,x)"))


class TestInverseRoleBoundaries:
    def test_inverse_at_source_boundary(self):
        # node 0 of a path has no predecessor: r-(x,y) fails from it
        g = path_graph(1, "r")  # single edge 0 -r-> 1
        hits = list(matches(g, parse_crpq("r-(x,y)")))
        assert hits == [{"x": 1, "y": 0}]

    def test_inverse_on_isolated_node(self):
        g = Graph()
        g.add_node("lonely")
        assert not satisfies(g, parse_crpq("r-(x,y)"))
        assert satisfies(g, parse_crpq("r-*(x,y)"))  # ε still matches

    def test_inverse_within_regex_at_boundary(self):
        # follow r forward then r backwards: ends where it started
        g = path_graph(1, "r")  # single edge 0 -r-> 1
        found = list(matches(g, parse_crpq("(r.r-)(x,y)")))
        assert {(m["x"], m["y"]) for m in found} == {(0, 0)}

    def test_mixed_direction_round_trip(self):
        g = Graph()
        g.add_edge("u", "r", "w")
        g.add_edge("v", "r", "w")
        # u -r-> w <-r- v: reachable via r.r- but not via r.r
        assert satisfies(g, parse_crpq("(r.r-)(x,y)"))
        assert not satisfies(g, parse_crpq("(r.r)(x,y)"))


class TestRepeatedVariables:
    def test_self_loop_required(self):
        g = path_graph(3, "r")
        assert not satisfies(g, parse_crpq("r(x,x)"))
        g.add_edge(1, "r", 1)
        assert satisfies(g, parse_crpq("r(x,x)"))
        assert [m["x"] for m in matches(g, parse_crpq("r(x,x)"))] == [1]

    def test_two_atoms_same_endpoints(self):
        g = Graph()
        g.add_edge(0, "r", 1)
        assert not satisfies(g, parse_crpq("r(x,y), s(x,y)"))
        g.add_edge(0, "s", 1)
        assert satisfies(g, parse_crpq("r(x,y), s(x,y)"))

    def test_variable_shared_across_three_atoms(self):
        g = Graph()
        g.add_edge("hub", "r", "a")
        g.add_edge("hub", "r", "b")
        g.add_node("hub", ["H"])
        q = parse_crpq("H(x), r(x,y), r(x,z)")
        found = list(matches(g, q))
        assert all(m["x"] == "hub" for m in found)
        assert len(found) == 4  # y, z range independently over {a, b}


QUERY_POOL = [
    "r*(x,y)",
    "r-(x,y), A(y)",
    "r(x,x)",
    "({A}.r)(x,y)",
    "({!A}.r*)(x,y), B(y)",
    "(r.r-)(x,y), A(x)",
    "(r-|s)*(x,y)",
    "A(x), r(x,y), s(y,x)",
]


class TestCornerCasesAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from(QUERY_POOL))
    def test_satisfies_matches_oracle(self, seed, query_text):
        graph = random_graph(4, 6, ["A", "B"], ["r", "s"], seed=seed)
        query = parse_crpq(query_text)
        assert satisfies(graph, query) == brute_force_satisfies(graph, query)


def _union_oracle(graph, union):
    for disjunct in union:
        if brute_force_satisfies(graph, disjunct):
            return True
    return False


class TestIncrementalEvaluatorRoundTrip:
    """The incremental evaluator must agree with a from-scratch evaluation
    after every mutation, checkpoint, and rollback."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.data())
    def test_mutation_round_trip(self, seed, data):
        graph = random_graph(3, 3, ["A", "B"], ["r", "s"], seed=seed)
        union = parse_query("; ".join(QUERY_POOL))
        evaluator = IncrementalUnionEvaluator(graph, union)
        undo_stack = []  # (token, [undo thunks]) for open checkpoints
        steps = data.draw(st.integers(2, 10))
        for _ in range(steps):
            op = data.draw(
                st.sampled_from(
                    ["label", "edge", "node", "checkpoint", "rollback", "commit"]
                )
            )
            nodes = graph.node_list()
            if op == "label":
                node = data.draw(st.sampled_from(nodes))
                name = data.draw(st.sampled_from(["A", "B"]))
                if name not in graph.labels_of(node):
                    graph.add_label(node, name)
                    if undo_stack:
                        undo_stack[-1][1].append(
                            lambda n=node, l=name: graph.remove_label(n, l)
                        )
            elif op == "edge":
                u = data.draw(st.sampled_from(nodes))
                v = data.draw(st.sampled_from(nodes))
                r = data.draw(st.sampled_from(["r", "s"]))
                if not graph.has_edge(u, r, v):
                    graph.add_edge(u, r, v)
                    if undo_stack:
                        undo_stack[-1][1].append(
                            lambda a=u, rr=r, b=v: graph.remove_edge(a, rr, b)
                        )
            elif op == "node":
                fresh = ("fresh", len(nodes))
                if fresh not in graph:
                    graph.add_node(fresh)
                    if undo_stack:
                        undo_stack[-1][1].append(
                            lambda n=fresh: graph.remove_node(n)
                        )
            elif op == "checkpoint":
                undo_stack.append((evaluator.checkpoint(), []))
            elif op == "rollback" and undo_stack:
                token, undos = undo_stack.pop()
                for undo in reversed(undos):
                    undo()
                evaluator.rollback(token)
            elif op == "commit" and undo_stack:
                token, undos = undo_stack.pop()
                evaluator.commit(token)
                # committed mutations belong to the enclosing frame now
                if undo_stack:
                    undo_stack[-1][1].extend(undos)

            hit = evaluator.find_union_match()
            oracle = _union_oracle(graph, union)
            assert (hit is not None) == oracle
            fresh_hit = find_union_match(graph, union)
            if hit is None:
                assert fresh_hit is None
            else:
                # identical disjunct and binding as a from-scratch run
                assert fresh_hit is not None
                assert str(hit[0]) == str(fresh_hit[0])
                assert hit[1] == fresh_hit[1]

    def test_unmanaged_removal_falls_back_to_rebuild(self):
        graph = path_graph(3, "r", ["A"])
        union = parse_query("A(x), r(x,y)")
        evaluator = IncrementalUnionEvaluator(graph, union)
        assert evaluator.find_union_match() is not None
        graph.remove_label(0, "A")
        graph.remove_edge(1, "r", 2)
        before = evaluator.stats()["full_rebuilds"]
        hit = evaluator.find_union_match()
        assert evaluator.stats()["full_rebuilds"] == before + 1
        fresh = find_union_match(graph, union)
        assert (hit is None) == (fresh is None)
        if hit is not None:
            assert hit[1] == fresh[1]

    def test_negated_test_label_addition(self):
        # adding A must *disable* matches of a ¬A test (non-monotone path)
        graph = Graph()
        graph.add_edge(0, "r", 1)
        graph.add_node(1, ["B"])
        union = parse_query("({!A}.r)(x,y), B(y)")
        evaluator = IncrementalUnionEvaluator(graph, union)
        assert evaluator.find_union_match() is not None
        graph.add_label(0, "A")
        assert evaluator.find_union_match() is None
        assert find_union_match(graph, union) is None
