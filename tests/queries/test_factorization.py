"""Lemma 3.7 — conditions (1) and (2) of query factorization.

Condition (1): Q̂ holds in a star-like graph iff it holds in some part.
Condition (2): Q holds in G iff Q̂ holds in every permission labelling of G.

Both are verified empirically for the generic construction and the
hand-crafted presets, on random graphs and random star-like graphs.
"""

import random

import pytest

from repro.core.starlike import Attachment, StarLikeGraph
from repro.graphs.generators import random_graph
from repro.graphs.graph import Graph
from repro.queries.evaluation import satisfies_union
from repro.queries.factorization import FactorizationError, factorize, is_local_query
from repro.queries.parser import parse_query
from repro.queries.presets import (
    example_36_factorization,
    example_36_factorization_paper,
    example_36_query,
)


def _random_part(n, m, seed, perm_names, labels=("A", "B"), perm_probability=0.25):
    g = random_graph(n, m, list(labels), ["r"], seed=seed, label_probability=0.3)
    rng = random.Random(seed + 77)
    for v in g.node_list():
        for name in perm_names:
            if rng.random() < perm_probability:
                g.add_label(v, name)
    return g


def _random_star(seed, perm_names):
    rng = random.Random(seed * 31 + 5)
    central = _random_part(3, 3, seed, perm_names)
    attachments = []
    for i in range(rng.randint(1, 2)):
        part = _random_part(3, 3, seed * 100 + i, perm_names)
        at = rng.choice(central.node_list())
        shared = rng.choice(part.node_list())
        fixed = Graph()
        for v in part.node_list():
            fixed.add_node(v, central.labels_of(at) if v == shared else part.labels_of(v))
        for e in part.edges():
            fixed.add_edge(*e)
        attachments.append(Attachment(fixed, shared, at))
    return StarLikeGraph(central, attachments)


class TestLocalQueries:
    def test_single_edge_is_local(self):
        assert is_local_query(parse_query("A(x), r(x,y), B(y)"))
        assert is_local_query(parse_query("A(x)"))

    def test_star_atom_not_local(self):
        assert not is_local_query(parse_query("r*(x,y)"))

    def test_two_atoms_not_local(self):
        assert not is_local_query(parse_query("r(x,y), s(y,z)"))

    def test_local_query_factorizes_to_itself(self):
        q = parse_query("A(x), r(x,y), B(y)")
        fact = factorize(q)
        assert fact.factored == q
        assert not fact.permissions


class TestGenericConstruction:
    def test_produces_connected_disjuncts(self):
        fact = factorize(example_36_query())
        assert fact.factored.is_connected()
        assert len(fact.permissions) > 0

    def test_one_way_preserved(self):
        fact = factorize(example_36_query())
        assert fact.factored.is_one_way()

    def test_budget_guard(self):
        q = parse_query("r+(x,y), s+(y,z), r+(z,w), s+(w,v)")
        with pytest.raises(FactorizationError):
            factorize(q, max_factors=5)

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            factorize(parse_query("A(x), B(y)"))


@pytest.mark.parametrize(
    "fact_builder",
    [
        lambda: factorize(example_36_query()),
        example_36_factorization,
    ],
    ids=["generic", "hand-minimal"],
)
class TestConditions:
    def test_condition2_truthful(self, fact_builder):
        fact = fact_builder()
        query = fact.original
        for seed in range(25):
            g = random_graph(4, 5, ["A", "B"], ["r"], seed=seed, label_probability=0.35)
            labelled = fact.truthful_labelling(g)
            assert satisfies_union(g, query) == satisfies_union(labelled, fact.factored), seed

    def test_condition2_every_labelling(self, fact_builder):
        fact = fact_builder()
        query = fact.original
        rng = random.Random(4)
        names = sorted(fact.permissions)
        for seed in range(25):
            g = random_graph(4, 5, ["A", "B"], ["r"], seed=seed, label_probability=0.35)
            if not satisfies_union(g, query):
                continue
            for _trial in range(4):
                h = g.copy()
                for v in h.node_list():
                    for name in names:
                        if rng.random() < 0.5:
                            h.add_label(v, name)
                assert satisfies_union(h, fact.factored), seed

    def test_condition1_star_like(self, fact_builder):
        fact = fact_builder()
        names = sorted(fact.permissions)
        for seed in range(30):
            star = _random_star(seed, names)
            whole = satisfies_union(star.assemble(), fact.factored)
            in_parts = any(satisfies_union(p, fact.factored) for p in star.parts())
            assert whole == in_parts, seed


class TestPaperPresetCorner:
    def test_paper_version_exact_without_ab_nodes(self):
        fact = example_36_factorization_paper()
        query = fact.original
        checked = 0
        for seed in range(60):
            g = random_graph(4, 5, ["A", "B"], ["r"], seed=seed, label_probability=0.35)
            if any(g.has_label(v, "A") and g.has_label(v, "B") for v in g.node_list()):
                continue  # the documented ε-corner
            checked += 1
            labelled = fact.truthful_labelling(g)
            assert satisfies_union(g, query) == satisfies_union(labelled, fact.factored)
        assert checked > 10

    def test_paper_version_corner_fires(self):
        # an isolated A∧B node: Q needs an edge, but the hand Q̂ fires
        fact = example_36_factorization_paper()
        g = Graph()
        g.add_node(0, ["A", "B"])
        assert not satisfies_union(g, fact.original)
        assert satisfies_union(fact.truthful_labelling(g), fact.factored)


class TestMultiRolePreset:
    def test_conditions_hold(self):
        import random

        from repro.queries.presets import multi_reachability_factorization

        for star in (False, True):
            fact = multi_reachability_factorization(["r", "s"], star=star)
            rng = random.Random(3)
            names = sorted(fact.permissions)
            for seed in range(20):
                g = random_graph(4, 6, ["A", "B"], ["r", "s"], seed=seed, label_probability=0.35)
                labelled = fact.truthful_labelling(g)
                assert satisfies_union(g, fact.original) == satisfies_union(
                    labelled, fact.factored
                ), (star, seed)
                if satisfies_union(g, fact.original):
                    h = g.copy()
                    for v in h.node_list():
                        for name in names:
                            if rng.random() < 0.5:
                                h.add_label(v, name)
                    assert satisfies_union(h, fact.factored), (star, seed)

    def test_star_variant_is_simple(self):
        from repro.queries.presets import multi_reachability_factorization

        fact = multi_reachability_factorization(["r", "s"], star=True)
        assert fact.original.is_simple()
        assert fact.factored.is_simple() or all(
            d.is_simple() for d in fact.factored.disjuncts
        )


class TestFactorizationMemo:
    def test_repeated_factorize_shares_construction(self):
        from repro.queries.factorization import (
            _FACTORIZATION_MEMO,
            factorization_cache_stats,
            factorize,
        )
        from repro.queries.parser import parse_query

        _FACTORIZATION_MEMO.clear()
        before = factorization_cache_stats()["builds"]
        first = factorize(parse_query("A(x), r+(x,y), B(y)"))
        mid = factorization_cache_stats()["builds"]
        second = factorize(parse_query("A(x), r+(x,y), B(y)"))
        after = factorization_cache_stats()
        assert first is second
        assert mid == before + 1 and after["builds"] == mid
        assert after["hits"] >= 1

    def test_two_decisions_share_one_construction(self):
        from repro.core.reduction import contains_via_reduction
        from repro.dl.normalize import normalize
        from repro.dl.tbox import TBox
        from repro.queries.factorization import (
            _FACTORIZATION_MEMO,
            factorization_cache_stats,
        )
        from repro.queries.parser import parse_crpq, parse_query

        _FACTORIZATION_MEMO.clear()
        tbox = normalize(TBox.of([("A", "exists r.A")]))
        rhs = parse_query("B(x)")
        before = factorization_cache_stats()["builds"]
        contains_via_reduction(parse_crpq("A(x)"), rhs, tbox)
        contains_via_reduction(parse_crpq("A(x), r(x,y)"), rhs, tbox)
        after = factorization_cache_stats()["builds"]
        assert after == before + 1  # the shared Q is factorized once
