"""Query text syntax."""

import pytest

from repro.queries.atoms import ConceptAtom, PathAtom
from repro.queries.parser import QuerySyntaxError, parse_crpq, parse_query


class TestAtoms:
    def test_concept_atom(self):
        q = parse_crpq("Customer(x)")
        atom = q.atoms[0]
        assert isinstance(atom, ConceptAtom)
        assert atom.label.name == "Customer" and atom.variable == "x"

    def test_complement_concept_atom(self):
        atom = parse_crpq("!A(x)").atoms[0]
        assert atom.label.negated

    def test_bare_role_atom(self):
        atom = parse_crpq("owns(x,y)").atoms[0]
        assert isinstance(atom, PathAtom)
        assert atom.source == "x" and atom.target == "y"

    def test_inverse_role_atom(self):
        atom = parse_crpq("owns-(x,y)").atoms[0]
        assert isinstance(atom, PathAtom)

    def test_complex_regex_atom(self):
        atom = parse_crpq("(owns.earns.{Partner}.owns*)(x,y)").atoms[0]
        assert isinstance(atom, PathAtom)
        assert str(atom.compiled) == "owns.earns.{Partner}.owns*"

    def test_postfix_star_atom(self):
        atom = parse_crpq("owns*(z,y)").atoms[0]
        assert isinstance(atom, PathAtom)
        assert atom.compiled.accepts_epsilon


class TestQueries:
    def test_multiple_atoms(self):
        q = parse_crpq("A(x), r(x,y), B(y)")
        assert q.size() == 3

    def test_union(self):
        q = parse_query("A(x); B(x); r(x,y)")
        assert len(q) == 3

    def test_commas_inside_regex_args(self):
        q = parse_crpq("(owns.earns)(x,y), RetailCompany(y)")
        assert q.size() == 2

    def test_whitespace_tolerance(self):
        assert parse_crpq(" A(x) ,  r( x , y ) ") == parse_crpq("A(x), r(x,y)")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "A", "A(x", "A(x,y,z)", "(x)", "A()"],
    )
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_crpq(bad)

    def test_bad_regex_reported(self):
        with pytest.raises(QuerySyntaxError):
            parse_crpq("(r..s)(x,y)")
