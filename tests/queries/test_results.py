"""Result-set answering: projection, distinct, limits, explanations."""

import pytest

from repro.dl.pg_schema import figure1_instance
from repro.graphs.generators import path_graph
from repro.graphs.graph import Graph
from repro.queries.results import answers, explain


class TestAnswers:
    def test_projection(self):
        g = figure1_instance()
        result = answers(g, "Customer(x), (owns.earns)(x,y)", output=["x", "y"])
        assert result.as_set() == {("ada", "miles")}
        assert result.variables == ("x", "y")

    def test_default_output_all_variables(self):
        g = path_graph(1, "r")
        result = answers(g, "r(x,y)")
        assert result.variables == ("x", "y")
        assert result.as_set() == {(0, 1)}

    def test_distinct(self):
        g = Graph()
        g.add_node("a", ["A"])
        g.add_node("b1")
        g.add_node("b2")
        g.add_edge("a", "r", "b1")
        g.add_edge("a", "r", "b2")
        projected = answers(g, "A(x), r(x,y)", output=["x"])
        assert len(projected) == 1  # two matches collapse under projection
        full = answers(g, "A(x), r(x,y)", output=["x", "y"])
        assert len(full) == 2

    def test_limit(self):
        g = path_graph(5, "r")
        result = answers(g, "r*(x,y)", limit=3)
        assert len(result) == 3

    def test_union_contributes_rows(self):
        g = path_graph(1, "r")
        g.add_edge(1, "s", 0)
        result = answers(g, "r(x,y); s(x,y)", output=["x", "y"])
        assert result.as_set() == {(0, 1), (1, 0)}

    def test_row_access(self):
        g = path_graph(1, "r")
        row = next(iter(answers(g, "r(x,y)")))
        assert row["x"] == 0 and row[1] == 1
        assert row.as_dict() == {"x": 0, "y": 1}

    def test_example_11_answer_pairs(self):
        g = figure1_instance()
        q1 = "(owns.earns.partner.owns*)(x,y)"
        result = answers(g, q1, output=["x", "y"])
        assert ("ada", "acme") in result.as_set()
        assert ("ada", "acme_sub") in result.as_set()


class TestExplain:
    def test_explanation_contains_witness_path(self):
        g = figure1_instance()
        explanation = explain(g, "Customer(x), (owns.earns)(x,y)")
        assert explanation is not None
        assert explanation.match["x"] == "ada"
        rendered = str(explanation)
        assert "owns" in rendered and "earns" in rendered

    def test_pinned_row(self):
        g = figure1_instance()
        result = answers(g, "(owns.earns.partner.owns*)(x,y)", output=["x", "y"])
        target = next(row for row in result if row["y"] == "acme_sub")
        explanation = explain(g, "(owns.earns.partner.owns*)(x,y)", row=target)
        assert explanation.match["y"] == "acme_sub"

    def test_no_match_returns_none(self):
        g = path_graph(1, "r")
        assert explain(g, "Zz(x)") is None

    def test_union_rejected(self):
        g = path_graph(1, "r")
        with pytest.raises(ValueError):
            explain(g, "A(x); B(x)")
