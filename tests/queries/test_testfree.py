"""Test elimination (the Theorem 5.1 ALCQ route): G ⊨ Q ⟺ G^e ⊨ Q^e."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import random_graph
from repro.graphs.graph import Graph
from repro.queries.evaluation import satisfies_union
from repro.queries.parser import parse_query
from repro.queries.testfree import eliminate_tests, enrich_graph

QUERIES = [
    "({A}.r)(x,y)",
    "(r.{A}.s)(x,y)",
    "(r.{!A})(x,y)",
    "({A}.r)*(x,y), B(y)",
    "({A} | r)(x,y)",
    "({A})(x,y)",
    "(r.{A}.r | s)(x,y), C(x)",
    "({A}.{B}.r)(x,y)",
]


class TestBasics:
    def test_output_is_test_free(self):
        for text in QUERIES:
            result = eliminate_tests(parse_query(text))
            assert result.query.is_test_free()

    def test_signature_inferred(self):
        result = eliminate_tests(parse_query("(r.{A}.s.{!B})(x,y)"))
        assert result.signature == ("A", "B")
        assert result.type_count == 4

    def test_guard(self):
        with pytest.raises(ValueError):
            eliminate_tests(parse_query("({A}.r)(x,y)"), signature=[f"L{i}" for i in range(10)])

    def test_enrichment_preserves_nodes(self):
        g = Graph()
        g.add_node(0, ["A"])
        g.add_node(1)
        g.add_edge(0, "r", 1)
        enriched = enrich_graph(g, ["A"])
        assert set(enriched.node_list()) == {0, 1}
        roles = enriched.role_names()
        assert roles == {"r__A__none"}

    def test_pure_test_atom_forces_type(self):
        result = eliminate_tests(parse_query("({A})(x,y)"))
        # the only way to satisfy it: x = y at an A-node
        g = Graph()
        g.add_node(0, ["A"])
        assert satisfies_union(result.enrich(g), result.query)
        g2 = Graph()
        g2.add_node(0, ["B"])
        assert not satisfies_union(result.enrich(g2), result.query)


class TestEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 5000), st.sampled_from(QUERIES))
    def test_satisfaction_preserved(self, seed, text):
        """G ⊨ Q ⟺ enrich(G) ⊨ eliminate(Q) on random graphs."""
        query = parse_query(text)
        result = eliminate_tests(query)
        graph = random_graph(4, 7, ["A", "B", "C"], ["r", "s"], seed=seed, label_probability=0.4)
        original = satisfies_union(graph, query)
        transformed = satisfies_union(result.enrich(graph), result.query)
        assert original == transformed, (seed, text)

    def test_union_alternative(self):
        # ({A} | r)(x,y): either an r-edge, or x=y at an A-node
        query = parse_query("({A} | r)(x,y)")
        result = eliminate_tests(query)
        edge_only = Graph()
        edge_only.add_node(0)
        edge_only.add_node(1)
        edge_only.add_edge(0, "r", 1)
        assert satisfies_union(result.enrich(edge_only), result.query)
        test_only = Graph()
        test_only.add_node(0, ["A"])
        assert satisfies_union(result.enrich(test_only), result.query)
        neither = Graph()
        neither.add_node(0, ["B"])
        assert not satisfies_union(result.enrich(neither), result.query)


class TestTBoxEnrichment:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 4000),
        st.sampled_from([
            [("A", "exists r.B")],
            [("A", "forall r.B")],
            [("A", "exists r.B"), ("B", "forall r.!A")],
            [("A", "<=1 r.B")],
            [("A", "B | C")],
        ]),
    )
    def test_model_correspondence(self, seed, cis):
        """G ⊨ T ⟺ enrich_graph(G) ⊨ T^e on random graphs."""
        from repro.dl.tbox import TBox
        from repro.queries.testfree import enrich_tbox

        tbox = TBox.of(cis)
        signature = ["A"]
        enrichment = enrich_tbox(tbox, signature, roles=["r"])
        graph = random_graph(4, 6, ["A", "B", "C"], ["r"], seed=seed, label_probability=0.4)
        enriched_graph = enrichment.enrich(graph)
        assert tbox.satisfied_by(graph) == enrichment.satisfied_by_enriched(enriched_graph), seed

    def test_inconsistent_enriched_edges_detected(self):
        """An enriched edge lying about its source type violates T^e."""
        from repro.dl.tbox import TBox
        from repro.queries.testfree import enrich_tbox, enriched_role
        from repro.graphs.types import Type

        tbox = TBox.of([("A", "exists r.B")])
        enrichment = enrich_tbox(tbox, ["A"], roles=["r"])
        g = Graph()
        g.add_node(0, ["A", "B"])
        g.add_node(1, ["B"])
        # claim the source is NOT of type {A} although it is... the lie is
        # the inverse: source lacks A but the edge claims type {A}
        g2 = Graph()
        g2.add_node(0, ["B"])  # no A
        g2.add_node(1, ["B"])
        lie = enriched_role(__import__("repro.graphs.labels", fromlist=["Role"]).Role("r"),
                            Type.of("A"), Type.of("!A"))
        g2.add_edge(0, lie, 1)
        assert not enrichment.satisfied_by_enriched(enrichment.base.complete(g2))
