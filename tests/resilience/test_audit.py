"""Verdict integrity auditing: witness checks, the A/B oracle plumbing,
the journal scrubber, and the scheduler's quarantine-and-recompute path."""

import json

import pytest

from repro.core.containment import ContainmentOptions, is_contained
from repro.dl.normalize import normalize
from repro.dl.pg_schema import figure1_schema
from repro.io import verdict_to_dict
from repro.obs import REGISTRY
from repro.queries.parser import parse_query
from repro.resilience.audit import (
    JournalScrubber,
    VerdictAuditor,
    model_satisfies_tbox,
    verdict_shape_error,
)
from repro.service.cache import DecisionCache, line_crc
from repro.service.server import ContainmentServer


def decide(lhs_text, rhs_text, tbox=None):
    lhs = parse_query(lhs_text)
    rhs = parse_query(rhs_text)
    result = is_contained(
        lhs, rhs, tbox, options=ContainmentOptions(use_cache=False)
    )
    return lhs, rhs, verdict_to_dict(result)


# ------------------------------------------------------------------ #
# verdict_shape_error


def test_shape_accepts_a_real_verdict():
    _lhs, _rhs, verdict = decide("A(x)", "B(x)")
    assert verdict_shape_error(verdict) is None


@pytest.mark.parametrize(
    "mutate, reason_part",
    [
        (lambda v: v.update(contained="yes"), "contained"),
        (lambda v: v.update(complete=1), "complete"),
        (lambda v: v.update(countermodel={"nodes": "nope"}), "decode"),
    ],
)
def test_shape_rejects_malformed_verdicts(mutate, reason_part):
    _lhs, _rhs, verdict = decide("A(x)", "B(x)")
    mutate(verdict)
    assert reason_part in verdict_shape_error(verdict)


def test_shape_rejects_countermodel_on_true_verdict():
    _lhs, _rhs, neg = decide("A(x)", "B(x)")
    _lhs, _rhs, verdict = decide("A(x)", "A(x)")
    verdict["countermodel"] = neg["countermodel"]
    assert "True verdict" in verdict_shape_error(verdict)


def test_shape_rejects_non_dict():
    assert verdict_shape_error("contained") is not None


# ------------------------------------------------------------------ #
# check_false


def test_genuine_countermodel_passes():
    lhs, rhs, verdict = decide("A(x)", "B(x)")
    assert VerdictAuditor().check_false(verdict, lhs, rhs) is True


def test_true_verdicts_pass_trivially():
    lhs, rhs, verdict = decide("A(x)", "A(x)")
    assert VerdictAuditor().check_false(verdict, lhs, rhs) is True


def test_tampered_countermodel_fails():
    lhs, rhs, verdict = decide("A(x)", "B(x)")
    # swap in the countermodel of an unrelated decision: it won't satisfy lhs
    _l, _r, other = decide("C(x)", "D(x)")
    verdict["countermodel"] = other["countermodel"]
    before = REGISTRY.get("audit.false.fail")
    assert VerdictAuditor().check_false(verdict, lhs, rhs) is False
    assert REGISTRY.get("audit.false.fail") == before + 1


def test_witnessless_incomplete_false_passes():
    lhs, rhs, verdict = decide("A(x)", "B(x)")
    verdict["countermodel"] = None
    verdict["complete"] = False
    assert VerdictAuditor().check_false(verdict, lhs, rhs) is True


def test_served_countermodel_passes_under_normalized_schema():
    """Regression: served countermodels have the normalization's fresh
    names stripped, so the TBox check must run on the *completed* model
    (or equivalently the original TBox) — checking the normalized TBox
    against the raw witness wrongly rejects every schema whose
    normalization introduced names (the Figure 1 schema does)."""
    tbox = figure1_schema()
    lhs, rhs, verdict = decide("Company(x)", "CredCard(x)", tbox)
    assert verdict["contained"] is False
    assert verdict["countermodel"] is not None
    normalized = normalize(tbox)
    assert VerdictAuditor().check_false(verdict, lhs, rhs, normalized) is True


def test_model_satisfies_tbox_completes_before_checking():
    from repro.io import graph_from_dict

    tbox = figure1_schema()
    _lhs, _rhs, verdict = decide("Company(x)", "CredCard(x)", tbox)
    model = graph_from_dict(verdict["countermodel"])
    normalized = normalize(tbox)
    assert model_satisfies_tbox(normalized, model) is True


def test_tbox_violating_countermodel_fails():
    tbox = figure1_schema()
    lhs, rhs, verdict = decide("Company(x)", "CredCard(x)", tbox)
    # poison the witness with a disjointness violation (fig1 declares
    # Customer and Company disjoint); it still matches lhs and avoids rhs,
    # so only the TBox leg of the audit can catch it
    nodes = verdict["countermodel"]["nodes"]
    for node, labels in nodes.items():
        if "Company" in labels:
            nodes[node] = list(labels) + ["Customer"]
    normalized = normalize(tbox)
    assert VerdictAuditor().check_false(verdict, lhs, rhs, normalized) is False


# ------------------------------------------------------------------ #
# A/B oracle plumbing


def test_mirror_backend_mapping():
    from repro.kernel.vec import HAVE_NUMPY

    assert VerdictAuditor.mirror_backend("vec") == "bitset"
    expected = "vec" if HAVE_NUMPY else None
    assert VerdictAuditor.mirror_backend("bitset") == expected
    assert VerdictAuditor.mirror_backend(None) == expected


def test_ab_sampling_is_deterministic():
    auditor = VerdictAuditor(ab_sample_every=3)
    hits = [auditor.should_ab_sample() for _ in range(9)]
    assert hits == [False, False, True] * 3
    assert not any(
        VerdictAuditor(ab_sample_every=0).should_ab_sample() for _ in range(5)
    )


def test_ab_verdict_matches_primary():
    pytest.importorskip("numpy")
    lhs, rhs, verdict = decide("Company(x), owns(x,y)", "Company(x)", figure1_schema())
    auditor = VerdictAuditor()
    mirror = auditor.ab_verdict(
        lhs, rhs, normalize(figure1_schema()), "auto",
        ContainmentOptions(use_cache=False),
    )
    assert mirror is not None
    assert mirror["contained"] == verdict["contained"]
    assert mirror["complete"] == verdict["complete"]


# ------------------------------------------------------------------ #
# scheduler integration: tampered journal entries are quarantined


def run_server(cache_dir, request):
    server = ContainmentServer(cache_dir=cache_dir, use_cache=True)
    responses, _stop = server.handle_line(json.dumps(request), server.new_stream())
    responses.extend(server.scheduler.drain())
    return server, responses


def test_tampered_cache_entry_is_quarantined_and_recomputed(tmp_path):
    request = {"type": "decide", "id": "r1", "lhs": "A(x)", "rhs": "B(x)"}
    server, responses = run_server(tmp_path, request)
    verdict = responses[0]
    assert verdict["source"] == "computed"
    assert verdict["verdict"]["contained"] is False

    # tamper the journaled countermodel *with a valid CRC*, so only the
    # serve-time witness audit can catch it
    journal = tmp_path / "decisions.jsonl"
    lines = journal.read_text().splitlines()
    entry = json.loads(lines[0])
    nodes = entry["verdict"]["countermodel"]["nodes"]
    entry["verdict"]["countermodel"]["nodes"] = {node: [] for node in nodes}
    entry.pop("crc")
    entry["crc"] = line_crc(entry)
    journal.write_text(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")

    server2, responses2 = run_server(tmp_path, request)
    verdict2 = responses2[0]
    # the poisoned entry was rejected at serve time and recomputed fresh
    assert verdict2["source"] == "computed"
    assert verdict2["verdict"]["contained"] is False
    assert verdict2["verdict"]["countermodel"] is not None
    assert (tmp_path / "quarantine.jsonl").exists()
    quarantined = [
        json.loads(line)
        for line in (tmp_path / "quarantine.jsonl").read_text().splitlines()
    ]
    assert any(q["reason"] == "audit.countermodel" for q in quarantined)
    # and a third server never sees the bad entry again
    _server3, responses3 = run_server(tmp_path, request)
    assert responses3[0]["verdict"]["contained"] is False


def test_clean_cache_entry_still_served_from_cache(tmp_path):
    request = {"type": "decide", "id": "r1", "lhs": "A(x)", "rhs": "B(x)"}
    run_server(tmp_path, request)
    _server, responses = run_server(tmp_path, request)
    assert responses[0]["source"] == "cache"


# ------------------------------------------------------------------ #
# scrubber


def test_scrubber_quarantines_shape_broken_record(tmp_path):
    request = {"type": "decide", "id": "r1", "lhs": "A(x)", "rhs": "B(x)"}
    run_server(tmp_path, request)
    journal = tmp_path / "decisions.jsonl"
    entry = json.loads(journal.read_text().splitlines()[0])
    entry["verdict"]["contained"] = "maybe"
    entry.pop("crc")
    entry["crc"] = line_crc(entry)
    journal.write_text(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")

    cache = DecisionCache(tmp_path, auto_heal=False)
    report = JournalScrubber(cache).scrub_once()
    assert report["records"]["decision_quarantined"] == 1
    assert cache.quarantine_count() == 1
    # the journal was compacted: a reload has no entries
    assert len(DecisionCache(tmp_path, auto_heal=False).entries()) == 0


def test_scrubber_clean_pass_reports_zero(tmp_path):
    request = {"type": "decide", "id": "r1", "lhs": "A(x)", "rhs": "B(x)"}
    run_server(tmp_path, request)
    cache = DecisionCache(tmp_path, auto_heal=False)
    report = JournalScrubber(cache).scrub_once()
    assert report["records"]["decision_quarantined"] == 0
    assert report["records"]["semantic_quarantined"] == 0
    assert report["quarantined_lines"] == 0
    assert report["passes"] == 1
