"""Chaos acceptance suite: injected failures never corrupt an answer.

Each test arms the deterministic fault harness, drives a real pipeline
path, and asserts the degraded-but-correct outcome the resilience layer
promises — recovered results identical to the serial run, expired
deadlines surfacing as *incomplete* verdicts, failed decisions isolated to
error responses while the batch flows, journal write failures degrading to
memory-only.  No test expects an unhandled exception anywhere.
"""

import io
import json
import math

import pytest

from repro.core.containment import ContainmentOptions, is_contained
from repro.dl.tbox import TBox
from repro.io import tbox_to_dict
from repro.kernel.parallel import (
    RecoveryPolicy,
    parallel_map,
    recovery_policy,
    set_recovery_policy,
)
from repro.obs import REGISTRY
from repro.resilience import Deadline, clear_faults, injected_faults
from repro.service.server import ContainmentServer


@pytest.fixture(autouse=True)
def _fast_recovery():
    """Shrink respawn backoff so crash tests stay quick; always restore."""
    previous = recovery_policy()
    set_recovery_policy(RecoveryPolicy(max_respawns=2, backoff_base_s=0.01))
    clear_faults()
    yield
    set_recovery_policy(previous)
    clear_faults()


def _counters():
    return REGISTRY.flushed_counters()


def _delta(before, name):
    return _counters().get(name, 0) - before.get(name, 0)


class TestWorkerCrashRecovery:
    def test_killed_worker_recovers_identical_results(self):
        serial = [math.isqrt(n) for n in range(100, 140)]
        before = _counters()
        with injected_faults("parallel.dispatch:kill_worker:1") as plan:
            recovered = parallel_map(math.isqrt, range(100, 140), workers=2)
            assert plan.report()["parallel.dispatch"]["fired"] == 1
        assert recovered == serial
        assert _delta(before, "parallel.pool_respawns") == 1
        assert _delta(before, "faults.kill_worker") == 1

    def test_persistent_crashes_degrade_to_serial(self):
        serial = [math.isqrt(n) for n in range(50, 90)]
        before = _counters()
        with injected_faults("parallel.dispatch:kill_worker:-1"):
            recovered = parallel_map(math.isqrt, range(50, 90), workers=2)
        assert recovered == serial
        assert _delta(before, "parallel.serial_degradations") == 1
        # every dispatch attempt lost its pool before degrading
        assert _delta(before, "parallel.pool_respawns") == 2


def _decision(prefix):
    """A forall-typed containment instance with concept names unique to the
    calling test — the process-wide decision memo may legitimately answer
    an already-completed identical decision before consulting a deadline,
    so each test needs a decision no other test (or suite) has run."""
    tbox = TBox.of([(f"{prefix}A", f"forall {prefix}_r.{prefix}B")])
    return f"{prefix}A(x), {prefix}_r(x,y)", f"{prefix}B(y)", tbox


class TestDeadlineCut:
    def test_expired_deadline_yields_incomplete_verdict(self):
        lhs, rhs, tbox = _decision("Zap")
        options = ContainmentOptions(deadline=Deadline.after_ms(0))
        result = is_contained(lhs, rhs, tbox, options=options)
        assert result.complete is False
        assert result.deadline_expired is True

    def test_cut_decision_does_not_poison_caches(self):
        lhs, rhs, tbox = _decision("Poi")
        cut = is_contained(
            lhs, rhs, tbox,
            options=ContainmentOptions(deadline=Deadline.after_ms(0)),
        )
        assert cut.deadline_expired
        # the same decision without a deadline must now run to completion
        full = is_contained(lhs, rhs, tbox)
        assert full.complete is True
        assert full.deadline_expired is False
        assert full.contained is True

    def test_no_deadline_and_never_deadline_agree(self):
        lhs, rhs, tbox = _decision("Agr")
        plain = is_contained(lhs, rhs, tbox)
        never = is_contained(
            lhs, rhs, tbox,
            options=ContainmentOptions(deadline=Deadline.never()),
        )
        assert plain == never


def _serve(server, requests):
    out = io.StringIO()
    text = "\n".join(
        r if isinstance(r, str) else json.dumps(r) for r in requests
    )
    server.serve_pipe(io.StringIO(text + "\n"), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestServiceChaos:
    def test_transient_dispatch_fault_is_retried(self):
        server = ContainmentServer(use_cache=False, pool_reuse=False)
        with injected_faults("scheduler.dispatch:raise:1") as plan:
            responses = _serve(server, [
                {"type": "decide", "id": "a", "lhs": "A(x)", "rhs": "A(x)"},
            ])
            assert plan.report()["scheduler.dispatch"]["fired"] == 1
        assert responses[-1]["type"] == "verdict"
        assert responses[-1]["verdict"]["contained"] is True
        assert server.scheduler.metrics.counter("decision_retries") == 1

    def test_persistent_fault_isolated_to_error_response(self):
        server = ContainmentServer(use_cache=False, pool_reuse=False)
        with injected_faults("scheduler.dispatch:raise:-1"):
            responses = _serve(server, [
                {"type": "decide", "id": "doomed", "lhs": "A(x)", "rhs": "A(x)"},
                {"type": "flush"},
            ])
        # retries exhausted -> structured error, the loop did not die
        errors = [r for r in responses if r["type"] == "error"]
        assert len(errors) == 1
        assert errors[0]["id"] == "doomed"
        assert "decision failed" in errors[0]["error"]
        # and the same request succeeds once the fault clears
        after = _serve(server, [
            {"type": "decide", "id": "doomed", "lhs": "A(x)", "rhs": "A(x)"},
        ])
        assert after[-1]["type"] == "verdict"

    def test_timeout_ms_request_yields_incomplete_response(self):
        server = ContainmentServer(use_cache=False, pool_reuse=False)
        # concept names unique to this test: the process-wide decision memo
        # may legitimately answer an already-completed identical decision
        # even under an expired deadline
        schema = tbox_to_dict(TBox.of([("ChaosA", "forall s.ChaosB")], name="chaos"))
        responses = _serve(server, [
            {"type": "schema", "ref": "s1", "tbox": schema},
            {"type": "decide", "id": "t", "lhs": "ChaosA(x), s(x,y)",
             "rhs": "ChaosB(y)", "schema_ref": "s1",
             "options": {"timeout_ms": 0}},
            {"type": "decide", "id": "ok", "lhs": "A(x)", "rhs": "A(x)"},
        ])
        by_id = {r["id"]: r for r in responses if "id" in r}
        assert by_id["t"]["type"] == "verdict"
        assert by_id["t"]["verdict"]["deadline_expired"] is True
        assert by_id["t"]["verdict"]["complete"] is False
        # the batch kept flowing around the timed-out decision
        assert by_id["ok"]["verdict"]["contained"] is True
        assert server.scheduler.metrics.counter("timeouts") == 1

    def test_cache_append_fault_degrades_to_memory_only(self, tmp_path):
        server = ContainmentServer(
            cache_dir=tmp_path, use_cache=True, pool_reuse=False
        )
        with injected_faults("cache.append:raise:-1"):
            responses = _serve(server, [
                {"type": "decide", "id": "a", "lhs": "A(x)", "rhs": "A(x)"},
            ])
        cache = server.scheduler.cache
        assert responses[-1]["type"] == "verdict"
        assert cache.metrics.counter("cache_write_failures") == 1
        # memory-only: the verdict is indexed but never reached disk
        assert len(cache) == 1
        assert not (tmp_path / "decisions.jsonl").exists()
        # the in-memory copy still answers a warm repeat of the request
        again = _serve(server, [
            {"type": "decide", "id": "a2", "lhs": "A(x)", "rhs": "A(x)"},
        ])
        assert again[-1]["type"] == "verdict"
        assert again[-1]["source"] == "dedup"
