"""Deadline/Budget semantics: expiry, latching, striding, pickling."""

import pickle
import time

import pytest

from repro.resilience import Budget, Deadline, DeadlineExceeded


class TestDeadline:
    def test_never_deadline_never_expires(self):
        deadline = Deadline.never()
        assert not deadline.expired()
        assert not deadline.poll()
        assert deadline.remaining_ms() is None

    def test_none_timeout_is_never(self):
        assert Deadline.after_ms(None).at is None

    def test_zero_timeout_expires_immediately(self):
        deadline = Deadline.after_ms(0)
        assert deadline.expired()

    def test_generous_timeout_not_expired(self):
        deadline = Deadline.after_ms(60_000)
        assert not deadline.expired()
        assert deadline.remaining_ms() > 1_000

    def test_expiry_latches(self):
        deadline = Deadline.after_ms(1)
        time.sleep(0.005)
        assert deadline.expired()
        # latched even if the clock were to disagree later
        deadline.at = time.monotonic() + 100.0
        assert deadline.expired()

    def test_poll_strides_clock_reads(self):
        deadline = Deadline.after_ms(60_000, stride=8)
        # the first stride-1 polls only decrement; the 8th reads the clock
        for _ in range(100):
            assert not deadline.poll()

    def test_poll_detects_expiry_within_stride(self):
        deadline = Deadline.after_ms(1, stride=4)
        time.sleep(0.005)
        assert any(deadline.poll() for _ in range(4))

    def test_check_raises(self):
        deadline = Deadline.after_ms(0, stride=1)
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after_ms(-1)

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            Deadline(None, stride=0)

    def test_pickle_preserves_instant_and_latch(self):
        deadline = Deadline.after_ms(60_000, stride=16)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.at == deadline.at
        assert clone.stride == deadline.stride
        assert not clone.expired()
        expired = Deadline.after_ms(0)
        assert expired.expired()
        assert pickle.loads(pickle.dumps(expired)).expired()


class TestBudget:
    def test_step_budget(self):
        budget = Budget.of(max_steps=3)
        assert not any(budget.spent() for _ in range(3))
        assert budget.spent()

    def test_deadline_budget(self):
        budget = Budget.of(timeout_ms=0)
        budget.deadline.stride = 1
        budget.deadline._countdown = 1
        assert budget.spent()

    def test_unbounded_budget(self):
        budget = Budget.of()
        assert not any(budget.spent() for _ in range(1000))

    def test_check_raises_on_spent(self):
        budget = Budget.of(max_steps=0)
        with pytest.raises(DeadlineExceeded):
            budget.check()

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
