"""Fault-injection harness: spec grammar, determinism, scoping, env install."""

import subprocess
import sys

import pytest

from repro.resilience import (
    FaultInjected,
    FaultRule,
    active_plan,
    clear_faults,
    injected_faults,
    install_faults,
    maybe_fault,
    parse_faults,
    site_armed,
)


class TestParseFaults:
    def test_minimal_spec(self):
        plan = parse_faults("search.step:raise")
        rule = plan.rule("search.step")
        assert rule.action == "raise"
        assert rule.times == 1
        assert rule.arg == 0.0

    def test_full_spec(self):
        plan = parse_faults("scheduler.dispatch:delay:3:0.25")
        rule = plan.rule("scheduler.dispatch")
        assert rule.action == "delay"
        assert rule.times == 3
        assert rule.arg == 0.25

    def test_multiple_sites(self):
        plan = parse_faults("a:raise, b:kill_worker:2")
        assert set(plan.rules) == {"a", "b"}

    def test_unlimited_times(self):
        rule = parse_faults("a:raise:-1").rule("a")
        assert rule.times == -1
        assert not rule.exhausted()

    @pytest.mark.parametrize(
        "spec",
        [
            "justasite",
            "a:explode",
            ":raise",
            "a:raise:three",
            "a:delay:1:fast",
            "a:raise:1:0:extra",
            "a:raise,a:delay",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_faults(spec)

    def test_empty_chunks_ignored(self):
        assert parse_faults(" , a:raise ,, ").rules.keys() == {"a"}


class TestFiring:
    def test_no_plan_is_noop(self):
        clear_faults()
        maybe_fault("anywhere")  # must not raise

    def test_raise_fires_exactly_times(self):
        with injected_faults("site:raise:2") as plan:
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    maybe_fault("site")
            # exhausted: further hits are counted but inert
            maybe_fault("site")
            maybe_fault("site")
            assert plan.report() == {"site": {"hits": 4, "fired": 2}}

    def test_other_sites_unaffected(self):
        with injected_faults("site:raise"):
            maybe_fault("other.site")  # must not raise

    def test_kill_worker_invokes_callback(self):
        killed = []
        with injected_faults("site:kill_worker"):
            maybe_fault("site", kill=lambda: killed.append(True))
            maybe_fault("site", kill=lambda: killed.append(True))
        assert killed == [True]

    def test_kill_worker_without_callback_is_inert(self):
        with injected_faults("site:kill_worker"):
            maybe_fault("site")  # no callback provided: ignored

    def test_exhausted_rule(self):
        rule = FaultRule(site="s", action="raise", times=0)
        assert rule.exhausted()


class TestScoping:
    def test_injected_faults_clears_on_exit(self):
        with injected_faults("site:raise"):
            assert site_armed("site")
        assert active_plan() is None
        assert not site_armed("site")

    def test_injected_faults_clears_on_error(self):
        with pytest.raises(RuntimeError):
            with injected_faults("site:raise"):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_install_and_clear(self):
        install_faults("site:delay:1:0.0")
        try:
            assert site_armed("site")
        finally:
            clear_faults()
        assert active_plan() is None


def test_env_var_installs_plan_on_import():
    code = (
        "from repro.resilience import active_plan\n"
        "plan = active_plan()\n"
        "assert plan is not None, 'env plan not installed'\n"
        "rule = plan.rule('search.step')\n"
        "assert rule.action == 'delay' and rule.times == 2\n"
        "print('ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": "src", "REPRO_FAULTS": "search.step:delay:2:0.01", "PATH": "/usr/bin:/bin"},
        cwd="/root/repo",
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
