"""The per-shard health state machine: ladder climbs, recovery, probes."""

from repro.resilience.health import (
    DEGRADED,
    HEALTHY,
    LADDER,
    QUARANTINED,
    HealthPolicy,
    ShardHealth,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(policy=None, clock=None):
    return ShardHealth(0, policy=policy or HealthPolicy(), clock=clock or Clock())


def test_starts_healthy_with_no_overrides():
    health = make()
    assert health.state == HEALTHY
    assert health.rung == 0
    assert health.overrides() == {}
    assert health.accepts_traffic()


def test_failure_streak_climbs_one_rung():
    health = make(HealthPolicy(degrade_after=3))
    for _ in range(2):
        health.record_failure("fault")
    assert health.state == HEALTHY  # streak not reached yet
    health.record_failure("fault")
    assert health.state == DEGRADED
    assert health.rung == 1
    assert health.overrides() == {"semantic_cache": False}


def test_success_resets_the_failure_streak():
    health = make(HealthPolicy(degrade_after=3))
    health.record_failure("fault")
    health.record_failure("fault")
    health.record_success()
    health.record_failure("fault")
    health.record_failure("fault")
    assert health.state == HEALTHY


def test_ladder_order_is_semantic_then_backend_then_workers():
    health = make(HealthPolicy(degrade_after=1))
    health.record_failure("audit_failure")
    assert health.overrides() == {"semantic_cache": False}
    health.record_failure("audit_failure")
    assert health.overrides() == {"semantic_cache": False, "backend": "bitset"}
    health.record_failure("audit_failure")
    assert health.overrides() == {
        "semantic_cache": False,
        "backend": "bitset",
        "workers": 1,
    }
    assert health.state == DEGRADED


def test_exhausting_the_ladder_quarantines():
    health = make(HealthPolicy(degrade_after=1))
    for _ in range(len(LADDER)):
        health.record_failure("worker_loss")
    assert health.state == QUARANTINED
    assert not health.accepts_traffic()
    assert "ladder exhausted" in health.last_reason


def test_ladder_overrides_only_touch_identity_excluded_options():
    # the soundness contract: every ladder key is excluded from decision
    # identity, so degrading can never change an answer
    assert set().union(*LADDER) <= {"semantic_cache", "backend", "workers"}


def test_success_streak_steps_back_down_to_healthy():
    health = make(HealthPolicy(degrade_after=1, recover_after=2))
    health.record_failure("fault")
    health.record_failure("fault")
    assert health.rung == 2
    for _ in range(2):
        health.record_success()
    assert health.rung == 1
    for _ in range(2):
        health.record_success()
    assert health.state == HEALTHY
    assert health.rung == 0
    assert health.overrides() == {}


def test_probe_gating_cooloff_and_single_slot():
    clock = Clock()
    health = make(HealthPolicy(probe_cooloff_s=1.0), clock=clock)
    assert not health.allow_probe()  # not quarantined
    health.quarantine("test")
    assert not health.allow_probe()  # cooloff not elapsed
    clock.advance(1.5)
    assert health.allow_probe()
    assert not health.allow_probe()  # slot already claimed
    health.on_probe_result(False)
    assert not health.allow_probe()  # cooloff doubled: 2s now
    clock.advance(1.0)
    assert not health.allow_probe()
    clock.advance(1.5)
    assert health.allow_probe()


def test_successful_probe_readmits_healthy():
    clock = Clock()
    health = make(HealthPolicy(probe_cooloff_s=0.1), clock=clock)
    health.quarantine("test")
    clock.advance(1.0)
    assert health.allow_probe()
    health.on_probe_result(True)
    assert health.state == HEALTHY
    assert health.rung == 0
    assert health.accepts_traffic()
    assert health.readmissions == 1


def test_probe_cooloff_backoff_is_capped():
    clock = Clock()
    policy = HealthPolicy(probe_cooloff_s=1.0, probe_cooloff_max_s=4.0)
    health = make(policy, clock=clock)
    health.quarantine("test")
    for _ in range(6):
        clock.advance(100.0)
        assert health.allow_probe()
        health.on_probe_result(False)
    assert health._cooloff == 4.0


def test_quarantined_ignores_further_signals_until_probe():
    health = make(HealthPolicy(degrade_after=1))
    health.quarantine("test")
    health.record_success()
    health.record_failure("fault")
    assert health.state == QUARANTINED


def test_snapshot_shape():
    health = make(HealthPolicy(degrade_after=1))
    health.record_failure("audit_failure", "tampered witness")
    snap = health.snapshot()
    assert snap["state"] == DEGRADED
    assert snap["rung"] == 1
    assert snap["overrides"] == {"semantic_cache": False}
    assert snap["last_reason"] == "tampered witness"
    assert snap["failures"] == {"audit_failure": 1}
