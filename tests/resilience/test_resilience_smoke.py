"""CI smoke for the resilience benchmark (E20).

Runs ``benchmarks/bench_resilience.py --quick`` — trimmed E5/E7 workloads
plus a worker-kill recovery round — and fails if an armed-but-never-firing
deadline changes any outcome, the estimated polling overhead breaches the
3% budget, or a killed pool worker costs anything but latency.
"""

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_resilience.py"


def test_quick_resilience_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)  # the bench installs its own plans
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"resilience smoke failed (exit {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "E20 FAILURE" not in proc.stderr
