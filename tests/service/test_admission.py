"""Admission control units: token buckets, DRR fair queue, the gates."""

import pytest

from repro.service.gateway.admission import (
    REJECT_INFLIGHT,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_QUOTA,
    AdmissionController,
    FairQueue,
    TenantQuota,
    TokenBucket,
    parse_quota_spec,
)
from repro.service.metrics import ServiceMetrics


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTenantQuota:
    def test_defaults_are_unlimited_rate(self):
        quota = TenantQuota()
        assert quota.rate == float("inf")
        assert quota.burst == 1024
        assert quota.weight == 1

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0}, {"rate": -1.0}, {"burst": 0}, {"weight": 0},
    ])
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(TenantQuota(rate=1.0, burst=3), clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(TenantQuota(rate=2.0, burst=1), clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # 2/s for half a second = 1 token
        assert bucket.try_take()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(TenantQuota(rate=100.0, burst=2), clock)
        clock.advance(60.0)
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]

    def test_retry_after_estimates_token_arrival(self):
        clock = FakeClock()
        bucket = TokenBucket(TenantQuota(rate=10.0, burst=1), clock)
        assert bucket.retry_after_ms() == 0
        bucket.try_take()
        # one token at 10/s: ~100 ms away
        assert 50 <= bucket.retry_after_ms() <= 100

    def test_unlimited_rate_never_waits(self):
        bucket = TokenBucket(TenantQuota(), FakeClock())
        for _ in range(10_000):
            assert bucket.try_take()
        assert bucket.retry_after_ms() == 0


class TestFairQueue:
    def test_fifo_within_one_tenant(self):
        queue = FairQueue()
        for i in range(3):
            queue.push("a", i)
        assert [queue.pop()[1] for _ in range(3)] == [0, 1, 2]
        assert queue.pop() is None

    def test_round_robin_across_tenants(self):
        queue = FairQueue()
        for i in range(4):
            queue.push("a", f"a{i}")
        queue.push("b", "b0")
        queue.push("c", "c0")
        order = [queue.pop()[0] for _ in range(6)]
        # b and c each get served before "a" drains its 4-deep backlog
        assert order.index("b") < 4
        assert order.index("c") < 4

    def test_equal_weights_share_equally_under_skew(self):
        queue = FairQueue()
        for i in range(100):
            queue.push("heavy", i)
        for i in range(10):
            queue.push("light", i)
        served = []
        for _ in range(20):
            served.append(queue.pop()[0])
        # in the first 20 dequeues light (10 queued) is fully served
        assert served.count("light") == 10

    def test_weights_scale_service_share(self):
        weights = {"gold": 3, "bronze": 1}
        queue = FairQueue(lambda tenant: weights[tenant])
        for i in range(30):
            queue.push("gold", i)
            queue.push("bronze", i)
        first8 = [queue.pop()[0] for _ in range(8)]
        # 3:1 quanta → gold gets 6 of the first 8 slots
        assert first8.count("gold") == 6
        assert first8.count("bronze") == 2

    def test_tracks_dequeue_positions(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.push("b", 2)
        while queue.pop() is not None:
            pass
        stats = queue.stats()
        assert stats["dequeues"] == 2
        assert stats["dequeued"] == {"a": 1, "b": 1}
        assert set(stats["last_position"].values()) == {1, 2}

    def test_len_and_depth(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert len(queue) == 3
        assert queue.depth("a") == 2
        assert queue.depth("missing") == 0

    def test_tenant_returning_after_drain_is_served(self):
        queue = FairQueue()
        queue.push("a", 1)
        assert queue.pop() == ("a", 1)
        queue.push("a", 2)
        assert queue.pop() == ("a", 2)


class TestAdmissionController:
    def _controller(self, **kwargs):
        kwargs.setdefault("metrics", ServiceMetrics())
        kwargs.setdefault("clock", FakeClock())
        return AdmissionController(**kwargs)

    def test_admits_until_inflight_cap(self):
        ctrl = self._controller(max_inflight=2)
        assert ctrl.admit("t") is None
        assert ctrl.admit("t") is None
        assert ctrl.admit("t") == REJECT_INFLIGHT
        ctrl.release("t")
        assert ctrl.admit("t") is None

    def test_per_tenant_queue_bound(self):
        ctrl = self._controller(max_inflight=100, max_queue=1)
        assert ctrl.admit("a") is None
        assert ctrl.admit("a") == REJECT_QUEUE_FULL
        # another tenant still has its own queue budget
        assert ctrl.admit("b") is None
        ctrl.dequeued("a")
        assert ctrl.admit("a") is None

    def test_tenant_quota_gate(self):
        clock = FakeClock()
        ctrl = self._controller(
            tenant_quotas={"limited": TenantQuota(rate=1.0, burst=1)},
            clock=clock,
        )
        assert ctrl.admit("limited") is None
        assert ctrl.admit("limited") == REJECT_TENANT_QUOTA
        assert ctrl.retry_after_ms("limited") > 0
        clock.advance(1.0)
        assert ctrl.admit("limited") is None

    def test_rejection_does_not_leak_inflight(self):
        ctrl = self._controller(
            max_inflight=10,
            tenant_quotas={"t": TenantQuota(rate=1.0, burst=1)},
        )
        ctrl.admit("t")
        ctrl.admit("t")  # quota-rejected
        assert ctrl.inflight == 1

    def test_metrics_counters(self):
        metrics = ServiceMetrics()
        ctrl = self._controller(metrics=metrics, max_inflight=1)
        ctrl.admit("t")
        ctrl.admit("t")
        ctrl.dequeued("t")
        ctrl.release("t")
        assert metrics.counter("gateway_admitted") == 1
        assert metrics.counter("gateway_rejected") == 1
        assert metrics.counter(f"gateway_rejected_{REJECT_INFLIGHT}") == 1
        assert metrics.tenant_counter("t", "admitted") == 1
        assert metrics.tenant_counter("t", "completed") == 1
        assert metrics.gauge("gateway.inflight") == 0
        assert metrics.gauge_high_water("gateway.inflight") == 1

    @pytest.mark.parametrize("kwargs", [
        {"max_inflight": 0}, {"max_queue": 0},
    ])
    def test_invalid_bounds_raise(self, kwargs):
        with pytest.raises(ValueError):
            self._controller(**kwargs)


class TestParseQuotaSpec:
    def test_rate_only_sets_default(self):
        tenant, quota = parse_quota_spec("50")
        assert tenant is None
        assert quota == TenantQuota(rate=50.0, burst=1024, weight=1)

    def test_full_spec_with_tenant(self):
        tenant, quota = parse_quota_spec("gold=100:50:4")
        assert tenant == "gold"
        assert quota == TenantQuota(rate=100.0, burst=50, weight=4)

    def test_inf_rate(self):
        _, quota = parse_quota_spec("inf:8")
        assert quota.rate == float("inf")
        assert quota.burst == 8

    @pytest.mark.parametrize("spec", [
        "", "=5", "a=b=c:x", "1:2:3:4", "gold=0", "gold=5:0",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_quota_spec(spec)
