"""CI smoke for the batched-service benchmark (E18).

Runs ``benchmarks/bench_service.py --quick`` — trimmed fast-row batches
through the containment server — and fails if any batch verdict diverges
from the sequential baseline or a warm run re-executes a search, so
tier-1 catches a service/sequential split without running the full
benchmark suite.
"""

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_service.py"


def test_quick_batch_smoke_verdicts_agree():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"service batch smoke failed (exit {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "VERDICT DIVERGENCE" not in proc.stderr
