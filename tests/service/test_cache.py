"""The persistent decision cache: journal round-trips, tolerance, versioning."""

import json

from repro.service.cache import (
    CACHE_EPOCH,
    DecisionCache,
    code_fingerprint,
    decision_digest,
)

KEY_A = ("auto", (("A(x)",), ()), (("B(x)",), ()), None, (4, 300))
KEY_B = ("auto", (("C(x)",), ()), (("B(x)",), ()), None, (4, 300))
VERDICT = {"contained": True, "complete": True, "method": "syntactic",
           "seeds_tried": 0, "supported_by_theory": True, "countermodel": None,
           "format": 1}


class TestRoundTrip:
    def test_get_put(self, tmp_path):
        cache = DecisionCache(tmp_path)
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, VERDICT)
        assert cache.get(KEY_A) == VERDICT
        assert cache.get(KEY_B) is None

    def test_survives_restart(self, tmp_path):
        DecisionCache(tmp_path).put(KEY_A, VERDICT)
        reloaded = DecisionCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get(KEY_A) == VERDICT

    def test_duplicate_puts_journal_once(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        cache.put(KEY_A, VERDICT)
        assert len(cache.journal_path.read_text().splitlines()) == 1

    def test_missing_dir_created_lazily(self, tmp_path):
        cache = DecisionCache(tmp_path / "nested" / "cache")
        assert not cache.journal_path.exists()
        cache.put(KEY_A, VERDICT)
        assert cache.journal_path.exists()


class TestTolerance:
    def test_corrupt_lines_skipped(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        with cache.journal_path.open("a") as journal:
            journal.write("{torn write\n")
            journal.write('{"key": 7, "code": "x", "verdict": []}\n')
            journal.write("\n")
        reloaded = DecisionCache(tmp_path)
        assert reloaded.corrupt_entries == 2
        assert reloaded.get(KEY_A) == VERDICT

    def test_stale_fingerprint_skipped(self, tmp_path):
        entry = {
            "code": "deadbeefdeadbeef",
            "key": decision_digest(KEY_A, "deadbeefdeadbeef"),
            "verdict": VERDICT,
        }
        path = tmp_path / "decisions.jsonl"
        path.write_text(json.dumps(entry) + "\n")
        cache = DecisionCache(tmp_path)
        assert cache.stale_entries == 1
        assert cache.get(KEY_A) is None

    def test_first_entry_wins_for_duplicate_keys(self, tmp_path):
        code = code_fingerprint()
        digest = decision_digest(KEY_A, code)
        lines = [
            json.dumps({"code": code, "key": digest, "verdict": VERDICT}),
            json.dumps({"code": code, "key": digest, "verdict": {"contained": False}}),
        ]
        (tmp_path / "decisions.jsonl").write_text("\n".join(lines) + "\n")
        assert DecisionCache(tmp_path).get(KEY_A) == VERDICT


class TestIdentity:
    def test_digest_depends_on_key_and_code(self):
        assert decision_digest(KEY_A) != decision_digest(KEY_B)
        assert decision_digest(KEY_A) != decision_digest(KEY_A, "other-code")

    def test_fingerprint_covers_epoch(self):
        assert isinstance(CACHE_EPOCH, int)
        assert len(code_fingerprint()) == 16

    def test_stats_shape(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        cache.get(KEY_A)
        cache.get(KEY_B)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1
