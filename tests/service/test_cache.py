"""The persistent decision cache: journal round-trips, tolerance, versioning."""

import json

from repro.service.cache import (
    CACHE_EPOCH,
    DecisionCache,
    code_fingerprint,
    decision_digest,
)

KEY_A = ("auto", (("A(x)",), ()), (("B(x)",), ()), None, (4, 300))
KEY_B = ("auto", (("C(x)",), ()), (("B(x)",), ()), None, (4, 300))
VERDICT = {"contained": True, "complete": True, "method": "syntactic",
           "seeds_tried": 0, "supported_by_theory": True, "countermodel": None,
           "format": 1}


class TestRoundTrip:
    def test_get_put(self, tmp_path):
        cache = DecisionCache(tmp_path)
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, VERDICT)
        assert cache.get(KEY_A) == VERDICT
        assert cache.get(KEY_B) is None

    def test_survives_restart(self, tmp_path):
        DecisionCache(tmp_path).put(KEY_A, VERDICT)
        reloaded = DecisionCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get(KEY_A) == VERDICT

    def test_duplicate_puts_journal_once(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        cache.put(KEY_A, VERDICT)
        assert len(cache.journal_path.read_text().splitlines()) == 1

    def test_missing_dir_created_lazily(self, tmp_path):
        cache = DecisionCache(tmp_path / "nested" / "cache")
        assert not cache.journal_path.exists()
        cache.put(KEY_A, VERDICT)
        assert cache.journal_path.exists()


class TestTolerance:
    def test_corrupt_lines_skipped(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        with cache.journal_path.open("a") as journal:
            journal.write("{torn write\n")
            journal.write('{"key": 7, "code": "x", "verdict": []}\n')
            journal.write("\n")
        reloaded = DecisionCache(tmp_path)
        assert reloaded.corrupt_entries == 2
        assert reloaded.get(KEY_A) == VERDICT

    def test_stale_fingerprint_skipped(self, tmp_path):
        entry = {
            "code": "deadbeefdeadbeef",
            "key": decision_digest(KEY_A, "deadbeefdeadbeef"),
            "verdict": VERDICT,
        }
        path = tmp_path / "decisions.jsonl"
        path.write_text(json.dumps(entry) + "\n")
        cache = DecisionCache(tmp_path)
        assert cache.stale_entries == 1
        assert cache.get(KEY_A) is None

    def test_first_entry_wins_for_duplicate_keys(self, tmp_path):
        code = code_fingerprint()
        digest = decision_digest(KEY_A, code)
        lines = [
            json.dumps({"code": code, "key": digest, "verdict": VERDICT}),
            json.dumps({"code": code, "key": digest, "verdict": {"contained": False}}),
        ]
        (tmp_path / "decisions.jsonl").write_text("\n".join(lines) + "\n")
        assert DecisionCache(tmp_path).get(KEY_A) == VERDICT


class TestCrashConsistency:
    def test_truncated_tail_line_recovered(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        # crash mid-append: the last line is cut off without its newline
        text = cache.journal_path.read_text()
        half = json.dumps({"code": cache._code, "key": "x" * 64, "verdict": VERDICT})
        cache.journal_path.write_text(text + half[: len(half) // 2])

        reloaded = DecisionCache(tmp_path)
        assert reloaded.corrupt_entries == 1
        assert reloaded.get(KEY_A) == VERDICT
        # the load auto-compacted the damage away
        assert reloaded.metrics.counter("cache_compactions") == 1
        healed = DecisionCache(tmp_path)
        assert healed.corrupt_entries == 0
        assert healed.get(KEY_A) == VERDICT

    def test_torn_tail_repaired_on_next_append(self, tmp_path, monkeypatch):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        # strip the trailing newline, then prevent the load-time compaction
        # from healing it so the append path must handle the torn tail
        text = cache.journal_path.read_text()
        cache.journal_path.write_text(text + '{"half": ')
        monkeypatch.setattr(DecisionCache, "compact", lambda self: 0)
        reopened = DecisionCache(tmp_path)
        assert reopened._torn_tail

        reopened.put(KEY_B, VERDICT)
        # the new entry began on its own line, not glued to the torn one
        lines = cache.journal_path.read_text().splitlines()
        assert json.loads(lines[-1])["key"] == decision_digest(KEY_B)
        fresh = DecisionCache(tmp_path)
        assert fresh.get(KEY_A) == VERDICT
        assert fresh.get(KEY_B) == VERDICT

    def test_interleaved_partial_write_recovered(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        good = cache.journal_path.read_text()
        # a partial record torn *between* two good ones (two writers, or a
        # filesystem replaying a partial block)
        cache.put(KEY_B, VERDICT)
        both = cache.journal_path.read_text()
        second = both[len(good):]
        cache.journal_path.write_text(good + '{"code": "repro", "ke' + "\n" + second)

        reloaded = DecisionCache(tmp_path)
        assert reloaded.corrupt_entries == 1
        assert reloaded.get(KEY_A) == VERDICT
        assert reloaded.get(KEY_B) == VERDICT

    def test_epoch_bump_compacts_stale_journal(self, tmp_path, monkeypatch):
        DecisionCache(tmp_path).put(KEY_A, VERDICT)
        monkeypatch.setattr("repro.service.cache.CACHE_EPOCH", CACHE_EPOCH + 1)

        upgraded = DecisionCache(tmp_path)
        assert upgraded.stale_entries == 1
        assert upgraded.get(KEY_A) is None  # cold cache under the new epoch
        assert upgraded.metrics.counter("cache_compactions") == 1
        # the stale entries were physically dropped, not just skipped
        assert cache_journal_is_clean(tmp_path)
        upgraded.put(KEY_A, VERDICT)
        assert DecisionCache(tmp_path).get(KEY_A) == VERDICT

    def test_explicit_compact_drops_duplicates(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        line = cache.journal_path.read_text()
        cache.journal_path.write_text(line * 3)
        assert DecisionCache(tmp_path).compact() == 1
        assert len((tmp_path / "decisions.jsonl").read_text().splitlines()) == 1

    def test_unwritable_journal_degrades_to_memory(self, tmp_path):
        cache = DecisionCache(tmp_path)
        # a directory squatting on the journal path makes every append
        # raise OSError (chmod tricks don't work under root)
        cache.journal_path.mkdir()
        cache.put(KEY_A, VERDICT)
        assert cache.metrics.counter("cache_write_failures") == 1
        assert cache.get(KEY_A) == VERDICT  # memory-only, but served


def cache_journal_is_clean(cache_dir) -> bool:
    """Every journal line parses and none is stale or torn."""
    text = (cache_dir / "decisions.jsonl").read_text()
    if text and not text.endswith("\n"):
        return False
    for line in text.splitlines():
        try:
            json.loads(line)
        except json.JSONDecodeError:
            return False
    probe = DecisionCache(cache_dir)
    return probe.corrupt_entries == 0 and probe.stale_entries == 0


class TestIdentity:
    def test_digest_depends_on_key_and_code(self):
        assert decision_digest(KEY_A) != decision_digest(KEY_B)
        assert decision_digest(KEY_A) != decision_digest(KEY_A, "other-code")

    def test_fingerprint_covers_epoch(self):
        assert isinstance(CACHE_EPOCH, int)
        assert len(code_fingerprint()) == 16

    def test_stats_shape(self, tmp_path):
        cache = DecisionCache(tmp_path)
        cache.put(KEY_A, VERDICT)
        cache.get(KEY_A)
        cache.get(KEY_B)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1
