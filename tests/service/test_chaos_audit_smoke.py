"""Tier-1 smoke: the E25 chaos/audit benchmark in ``--quick`` mode.

Runs the bitflip + kill_worker chaos plan end to end (verdict
bit-identity, quarantine accounting, half-open shard re-admission) with
quarter load.  Thread-shard mode so the smoke is deterministic on
single-CPU runners; skipped under ``REPRO_FAST=1`` via the
``gateway_mp`` marker.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.gateway_mp

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_bench_chaos_audit_quick():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "bench_chaos_audit.py"),
         "--quick", "--threads"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"bench_chaos_audit --quick failed\nstdout:\n{result.stdout}"
        f"\nstderr:\n{result.stderr}"
    )
    assert "bit-identical to the sequential server" in result.stdout
    assert "every corrupted journal line was quarantined" in result.stdout
