"""The asyncio gateway in thread-shard mode: transports, semantics, stats.

Thread mode (``processes=False``) runs the exact gateway code path minus
fork, so these tests are fast and single-CPU safe; the multi-process shape
(spawn, crash, respawn) is covered by ``test_gateway_mp.py``.
"""

import asyncio
import json

import pytest

from repro.service.gateway import GatewayConfig, GatewayServer, TenantQuota
from repro.service.server import ContainmentServer


def run(coro):
    return asyncio.run(coro)


def make_gateway(**overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("processes", False)
    return GatewayServer(GatewayConfig(**overrides))


class Client:
    """One JSONL connection to a gateway listener."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def tcp(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    @classmethod
    async def unix(cls, path):
        reader, writer = await asyncio.open_unix_connection(str(path))
        return cls(reader, writer)

    async def send(self, obj):
        self.writer.write((json.dumps(obj) + "\n").encode())
        await self.writer.drain()

    async def recv(self):
        line = await asyncio.wait_for(self.reader.readline(), timeout=30)
        assert line, "connection closed unexpectedly"
        return json.loads(line)

    async def ask(self, obj):
        await self.send(obj)
        return await self.recv()

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def tcp_gateway(**overrides):
    gateway = make_gateway(**overrides)
    await gateway.start()
    server = await gateway.start_tcp("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return gateway, port


SCHEMA = {"cis": [["A", "B"]]}


def test_decide_over_tcp_matches_sequential_server():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            client = await Client.tcp(port)
            ack = await client.ask({"type": "schema", "ref": "s", "tbox": SCHEMA})
            assert ack["type"] == "ack"
            got = {}
            for rid, lhs, rhs in [
                ("sub", "A(x)", "B(x)"),
                ("not-sub", "B(x)", "A(x)"),
                ("self", "A(x)", "A(x)"),
            ]:
                response = await client.ask({
                    "type": "decide", "id": rid, "lhs": lhs, "rhs": rhs,
                    "schema_ref": "s",
                })
                assert response["type"] == "verdict"
                got[rid] = response["verdict"]
            await client.close()
            return got
        finally:
            await gateway.stop()

    gateway_verdicts = run(scenario())

    reference = ContainmentServer(use_cache=False, pool_reuse=False)
    stream = reference.new_stream()
    reference.handle_line(json.dumps(
        {"type": "schema", "ref": "s", "tbox": SCHEMA}), stream)
    for rid, lhs, rhs in [
        ("sub", "A(x)", "B(x)"),
        ("not-sub", "B(x)", "A(x)"),
        ("self", "A(x)", "A(x)"),
    ]:
        reference.handle_line(json.dumps({
            "type": "decide", "id": rid, "lhs": lhs, "rhs": rhs,
            "schema_ref": "s",
        }), stream)
    responses, _stop = reference.handle_line(
        json.dumps({"type": "flush", "id": "f"}), stream)
    for response in responses:
        if response["type"] != "verdict":
            continue
        # the bit-identity contract: same verdict payload either path
        assert gateway_verdicts[response["id"]] == response["verdict"]
    verdict_ids = {r["id"] for r in responses if r["type"] == "verdict"}
    assert verdict_ids == set(gateway_verdicts)


def test_unix_listener_speaks_the_same_protocol(tmp_path):
    async def scenario():
        gateway = make_gateway()
        await gateway.start()
        path = tmp_path / "gw.sock"
        await gateway.start_unix(path)
        try:
            client = await Client.unix(path)
            pong = await client.ask({"type": "ping", "id": "p"})
            assert pong == {"type": "pong", "id": "p"}
            verdict = await client.ask({
                "type": "decide", "id": "d", "lhs": "A(x)", "rhs": "A(x)",
            })
            assert verdict["verdict"]["contained"] is True
            await client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_default_ids_are_per_connection():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            first = await Client.tcp(port)
            second = await Client.tcp(port)
            r1 = await first.ask({"type": "decide", "lhs": "A(x)", "rhs": "A(x)"})
            r2 = await second.ask({"type": "decide", "lhs": "A(x)", "rhs": "A(x)"})
            # both connections count from 1 — no shared sequence
            assert r1["id"] == "req-1"
            assert r2["id"] == "req-1"
            await first.close()
            await second.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_shutdown_closes_one_connection_not_the_gateway():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            doomed = await Client.tcp(port)
            survivor = await Client.tcp(port)
            bye = await doomed.ask({"type": "shutdown", "id": "end"})
            assert bye == {"type": "bye", "id": "end"}
            assert await doomed.reader.read() == b""  # connection closed
            # the other tenant's connection is unaffected
            pong = await survivor.ask({"type": "ping", "id": "still-here"})
            assert pong["type"] == "pong"
            await survivor.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_flush_acks_after_outstanding_decides():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            client = await Client.tcp(port)
            for i in range(5):
                await client.send({
                    "type": "decide", "id": f"d{i}",
                    "lhs": "A(x)", "rhs": "B(x)", "schema": SCHEMA,
                })
            await client.send({"type": "flush", "id": "f"})
            responses = [await client.recv() for _ in range(6)]
            # the ack comes last: all decisions were answered first
            assert responses[-1] == {"type": "ack", "id": "f"}
            assert {r["id"] for r in responses[:-1]} == {f"d{i}" for i in range(5)}
            await client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_tenant_quota_rejection_is_structured():
    async def scenario():
        gateway, port = await tcp_gateway(
            tenant_quotas={"throttled": TenantQuota(rate=0.001, burst=1)},
        )
        try:
            client = await Client.tcp(port)
            ok = await client.ask({
                "type": "decide", "id": "first", "tenant": "throttled",
                "lhs": "A(x)", "rhs": "A(x)",
            })
            assert ok["type"] == "verdict"
            rejected = await client.ask({
                "type": "decide", "id": "second", "tenant": "throttled",
                "lhs": "A(x)", "rhs": "A(x)",
            })
            assert rejected["type"] == "error"
            assert rejected["code"] == "overloaded"
            assert rejected["reason"] == "tenant_quota"
            assert rejected["retry_after_ms"] > 0
            await client.close()
            return gateway.stats()
        finally:
            await gateway.stop()

    stats = run(scenario())
    assert stats["counters"]["gateway_rejected_tenant_quota"] == 1
    assert stats["tenants"]["throttled"]["rejected_tenant_quota"] == 1


def test_invalid_decide_answers_error_and_keeps_connection():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            client = await Client.tcp(port)
            error = await client.ask({
                "type": "decide", "id": "bad", "lhs": "A(x)", "rhs": "",
            })
            assert error["type"] == "error"
            assert error["id"] == "bad"
            # connection still serves after the validation error
            pong = await client.ask({"type": "ping", "id": "p"})
            assert pong["type"] == "pong"
            await client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_unknown_schema_ref_is_a_structured_error():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            client = await Client.tcp(port)
            error = await client.ask({
                "type": "decide", "id": "x", "lhs": "A(x)", "rhs": "B(x)",
                "schema_ref": "never-registered",
            })
            assert error["type"] == "error"
            assert "schema_ref" in error["error"]
            await client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_schema_routes_to_stable_shard():
    async def scenario():
        gateway, port = await tcp_gateway(shards=4)
        try:
            client = await Client.tcp(port)
            await client.ask({"type": "schema", "ref": "s", "tbox": SCHEMA})
            for i in range(6):
                await client.ask({
                    "type": "decide", "id": f"d{i}",
                    "lhs": "A(x)", "rhs": "B(x)", "schema_ref": "s",
                })
            await client.close()
            shards = {
                shard: counters for shard, counters in
                gateway.stats()["shards"].items()
                if counters.get("dispatched")
            }
            return shards
        finally:
            await gateway.stop()

    shards = run(scenario())
    # same schema fingerprint → same shard, every time
    assert len(shards) == 1
    assert next(iter(shards.values()))["dispatched"] == 6


def test_stats_exposes_gateway_block():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            client = await Client.tcp(port)
            await client.ask({"type": "decide", "lhs": "A(x)", "rhs": "A(x)"})
            stats = (await client.ask({"type": "stats", "id": "s"}))["stats"]
            await client.close()
            return stats
        finally:
            await gateway.stop()

    stats = run(scenario())
    assert stats["gateway"]["shards"] == 2
    assert stats["gateway"]["inflight"] == 0
    assert stats["latency_ms_by_outcome"]["admitted"]["count"] == 1
    assert "p95" in stats["latency_ms_by_outcome"]["admitted"]


def test_concurrent_clients_multiplex():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            async def one_client(n):
                client = await Client.tcp(port)
                response = await client.ask({
                    "type": "decide", "id": f"c{n}", "tenant": f"tenant{n % 3}",
                    "lhs": "A(x)", "rhs": "B(x)", "schema": SCHEMA,
                })
                await client.close()
                return response

            responses = await asyncio.gather(*(one_client(n) for n in range(12)))
            assert all(r["type"] == "verdict" for r in responses)
            assert {r["id"] for r in responses} == {f"c{n}" for n in range(12)}
        finally:
            await gateway.stop()

    run(scenario())


def test_stop_resolves_parked_connections():
    async def scenario():
        gateway, port = await tcp_gateway()
        client = await Client.tcp(port)
        pong = await client.ask({"type": "ping", "id": "p"})
        assert pong["type"] == "pong"
        # client sits parked in the gateway's readline; stop() must not hang
        await asyncio.wait_for(gateway.stop(), timeout=20)
        assert await client.reader.read() == b""

    run(scenario())
