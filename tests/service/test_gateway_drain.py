"""Gateway drain + health ladder: structured draining rejections, in-flight
completion, readiness probes, degraded dispatch, and quarantine recovery.

Thread-shard mode for speed; the real SIGTERM-against-a-process shape is
in ``test_gateway_sigterm.py`` (marked ``gateway_mp``).
"""

import asyncio
import json

import pytest

from repro.resilience import faults
from repro.resilience.health import DEGRADED, HEALTHY, QUARANTINED, HealthPolicy
from repro.service.gateway import GatewayConfig, GatewayServer


def run(coro):
    return asyncio.run(coro)


async def tcp_gateway(**overrides):
    overrides.setdefault("shards", 1)
    overrides.setdefault("processes", False)
    gateway = GatewayServer(GatewayConfig(**overrides))
    await gateway.start()
    server = await gateway.start_tcp("127.0.0.1", 0)
    return gateway, server.sockets[0].getsockname()[1]


async def send(writer, obj):
    writer.write((json.dumps(obj) + "\n").encode())
    await writer.drain()


async def recv(reader):
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    assert line, "connection closed unexpectedly"
    return json.loads(line)


async def recv_id(reader, want_id):
    """Read until the response for ``want_id`` (verdicts stream unordered)."""
    for _ in range(50):
        response = await recv(reader)
        if response.get("id") == want_id:
            return response
    raise AssertionError(f"no response for {want_id}")


# ------------------------------------------------------------------ #
# drain


def test_drain_rejects_new_decides_and_finishes_inflight():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            with faults.injected_faults("scheduler.dispatch:delay:1:0.4"):
                await send(writer, {"type": "decide", "id": "slow",
                                    "lhs": "A(x)", "rhs": "B(x)"})
                await asyncio.sleep(0.1)  # let it reach the shard
                gateway.begin_drain()
                await send(writer, {"type": "decide", "id": "late",
                                    "lhs": "A(x)", "rhs": "A(x)"})
                late = await recv_id(reader, "late")
                assert late["type"] == "error"
                assert late["code"] == "draining"
                # the in-flight decision still completes with its verdict
                slow = await recv_id(reader, "slow")
                assert slow["type"] == "verdict"
                assert slow["verdict"]["contained"] is False
            ready, payload = gateway.readiness()
            assert ready is False
            assert payload["draining"] is True
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_drain_coroutine_reports_clean_completion():
    async def scenario():
        gateway, _port = await tcp_gateway()
        assert await gateway.drain(timeout_s=5.0) is True
        assert gateway.stats()["gateway"]["draining"] is True

    run(scenario())


def test_readyz_http_flips_to_503_on_drain():
    async def scenario():
        gateway, _port = await tcp_gateway()
        http = await gateway.start_http("127.0.0.1", 0)
        http_port = http.sockets[0].getsockname()[1]
        try:
            async def get(path):
                reader, writer = await asyncio.open_connection("127.0.0.1", http_port)
                writer.write(f"GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n".encode())
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                head, _sep, body = raw.partition(b"\r\n\r\n")
                return int(head.split()[1]), json.loads(body)

            status, payload = await get("/v1/readyz")
            assert status == 200 and payload["ready"] is True
            status, _payload = await get("/v1/healthz")
            assert status == 200
            gateway.begin_drain()
            status, payload = await get("/v1/readyz")
            assert status == 503 and payload["draining"] is True
            status, _payload = await get("/v1/healthz")  # liveness unaffected
            assert status == 200
        finally:
            await gateway.stop()

    run(scenario())


# ------------------------------------------------------------------ #
# health ladder


def test_shard_faults_climb_the_ladder_and_degrade_dispatch():
    async def scenario():
        gateway, port = await tcp_gateway(
            health_policy=HealthPolicy(degrade_after=1),
        )
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            with faults.injected_faults("gateway.shard.handle:raise:2"):
                for i in range(2):
                    await send(writer, {"type": "decide", "id": f"f{i}",
                                        "lhs": "A(x)", "rhs": "B(x)"})
                    # shard-fault errors carry no request id: read in order
                    response = await recv(reader)
                    assert "shard fault" in response.get("error", "")
            health = gateway.health[0]
            assert health.state == DEGRADED
            assert health.rung == 2
            assert health.overrides() == {"semantic_cache": False,
                                          "backend": "bitset"}
            # degraded dispatch still answers, verdict unchanged
            await send(writer, {"type": "decide", "id": "ok",
                                "lhs": "A(x)", "rhs": "B(x)"})
            response = await recv_id(reader, "ok")
            assert response["type"] == "verdict"
            assert response["verdict"]["contained"] is False
            assert gateway.metrics.shard_counter(0, "degraded_dispatch") >= 1
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_quarantined_shard_recovers_via_half_open_probe():
    async def scenario():
        gateway, port = await tcp_gateway(
            health_policy=HealthPolicy(degrade_after=1, probe_cooloff_s=0.05),
            health_interval_s=0.02,
        )
        try:
            gateway.health[0].quarantine("forced by test")
            assert gateway.health[0].state == QUARANTINED
            for _ in range(200):
                if gateway.health[0].state == HEALTHY:
                    break
                await asyncio.sleep(0.05)
            assert gateway.health[0].state == HEALTHY
            assert gateway.health[0].readmissions == 1
            # the readmitted shard serves traffic again
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send(writer, {"type": "decide", "id": "after",
                                "lhs": "A(x)", "rhs": "A(x)"})
            response = await recv_id(reader, "after")
            assert response["verdict"]["contained"] is True
            snap = gateway.stats()["gateway"]["health"][0]
            assert snap["readmissions"] == 1
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_routing_steers_around_a_quarantined_shard():
    async def scenario():
        gateway, port = await tcp_gateway(shards=2)
        try:
            gateway.health[0].quarantine("forced by test")
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for i in range(6):
                await send(writer, {"type": "decide", "id": f"q{i}",
                                    "lhs": f"A{i}(x)", "rhs": f"A{i}(x)"})
            for i in range(6):
                response = await recv_id(reader, f"q{i}")
                assert response["type"] == "verdict"
                assert response["verdict"]["contained"] is True
            # shard 0 took nothing; at least one request was rerouted
            assert gateway.metrics.shard_counter(0, "dispatched") == 0
            assert gateway.metrics.counter("gateway_rerouted") >= 1
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_no_accepting_shard_answers_structured_unavailable():
    async def scenario():
        gateway, port = await tcp_gateway(shards=1, max_respawns=0)
        try:
            gateway.health[0].quarantine("forced by test")
            gateway.fleet.shards[0].dead = True
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send(writer, {"type": "decide", "id": "x",
                                "lhs": "A(x)", "rhs": "A(x)"})
            response = await recv(reader)
            assert response["type"] == "error"
            assert "unavailable" in response["error"]
            ready, _payload = gateway.readiness()
            assert ready is False
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())
