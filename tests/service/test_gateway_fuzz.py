"""Async framing fuzz: the accept loop must survive any client behaviour.

The PR 5 fuzz contract ("no request line may kill the serve loop"),
extended to the gateway's concurrent transports: arbitrary TCP
segmentation, torn lines, mid-request disconnects, binary garbage,
oversized lines, and interleaved tenants — after each abuse the gateway
still answers a well-formed client, and torn connections are counted
under ``connections_dropped``.
"""

import asyncio
import json
import random

from repro.service.gateway import GatewayConfig, GatewayServer


def run(coro):
    return asyncio.run(coro)


async def tcp_gateway(**overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("processes", False)
    gateway = GatewayServer(GatewayConfig(**overrides))
    await gateway.start()
    server = await gateway.start_tcp("127.0.0.1", 0)
    return gateway, server.sockets[0].getsockname()[1]


async def healthy_roundtrip(port, rid="健康"):
    """A clean client still gets a verdict — the liveness probe."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((json.dumps({
        "type": "decide", "id": rid, "lhs": "A(x)", "rhs": "A(x)",
    }) + "\n").encode())
    await writer.drain()
    response = json.loads(await asyncio.wait_for(reader.readline(), timeout=30))
    writer.close()
    assert response["type"] == "verdict", response
    assert response["id"] == rid


def test_single_byte_segmentation():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            line = json.dumps({
                "type": "decide", "id": "slow", "lhs": "A(x)", "rhs": "B(x)",
            }) + "\n"
            for byte in line.encode():
                writer.write(bytes([byte]))
                await writer.drain()
            response = json.loads(await asyncio.wait_for(
                reader.readline(), timeout=30))
            assert response["id"] == "slow"
            assert response["type"] == "verdict"
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_mid_request_disconnect_counts_dropped():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            _reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b'{"type": "decide", "id": "torn", "lhs": "A(')
            await writer.drain()
            writer.close()  # no newline ever arrives
            for _ in range(200):
                if gateway.metrics.counter("connections_dropped"):
                    break
                await asyncio.sleep(0.01)
            assert gateway.metrics.counter("connections_dropped") == 1
            await healthy_roundtrip(port)
        finally:
            await gateway.stop()

    run(scenario())


def test_oversized_line_drops_only_that_connection():
    async def scenario():
        gateway, port = await tcp_gateway(max_line_bytes=4096)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b'{"type": "decide", "lhs": "' + b"A" * 65536)
            await writer.drain()
            # the gateway hangs up on the overflowing client
            assert await asyncio.wait_for(reader.read(), timeout=30) == b""
            assert gateway.metrics.counter("gateway_line_overflow") == 1
            assert gateway.metrics.counter("connections_dropped") == 1
            await healthy_roundtrip(port)
        finally:
            await gateway.stop()

    run(scenario())


def test_garbage_lines_answer_errors_not_disconnects():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for payload in [
                b"\xff\xfe\x00garbage\n",
                b"not json at all\n",
                b"[1, 2, 3]\n",
                b'{"type": "warp"}\n',
            ]:
                writer.write(payload)
                await writer.drain()
                response = json.loads(await asyncio.wait_for(
                    reader.readline(), timeout=30))
                assert response["type"] == "error"
            # still alive on the same connection
            writer.write(b'{"type": "ping", "id": "p"}\n')
            await writer.drain()
            pong = json.loads(await asyncio.wait_for(
                reader.readline(), timeout=30))
            assert pong["type"] == "pong"
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_random_segmentation_with_interleaved_tenants():
    async def scenario():
        gateway, port = await tcp_gateway()
        rng = random.Random(23)
        try:
            async def one_tenant(tenant, count):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                payload = b"".join(
                    (json.dumps({
                        "type": "decide", "id": f"{tenant}-{i}",
                        "tenant": tenant, "lhs": "A(x)", "rhs": "B(x)",
                        "schema": {"cis": [["A", "B"]]},
                    }) + "\n").encode()
                    for i in range(count)
                )
                # write in random-size chunks with yields between them, so
                # tenants' segments interleave on the loop
                offset = 0
                while offset < len(payload):
                    size = rng.randint(1, 80)
                    writer.write(payload[offset:offset + size])
                    await writer.drain()
                    offset += size
                    await asyncio.sleep(0)
                ids = set()
                for _ in range(count):
                    response = json.loads(await asyncio.wait_for(
                        reader.readline(), timeout=30))
                    assert response["type"] == "verdict", response
                    ids.add(response["id"])
                writer.close()
                return ids

            results = await asyncio.gather(
                one_tenant("red", 7), one_tenant("blue", 7), one_tenant("green", 7)
            )
            for tenant, ids in zip(("red", "blue", "green"), results):
                assert ids == {f"{tenant}-{i}" for i in range(7)}
        finally:
            await gateway.stop()

    run(scenario())


def test_abrupt_resets_never_kill_the_accept_loop():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            for i in range(10):
                _reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(f'{{"type": "decide", "id": "r{i}", "lhs"'.encode())
                await writer.drain()
                # hard close with data in flight (RST on most stacks)
                sock = writer.get_extra_info("socket")
                try:
                    sock.setsockopt(
                        __import__("socket").SOL_SOCKET,
                        __import__("socket").SO_LINGER,
                        __import__("struct").pack("ii", 1, 0),
                    )
                except OSError:
                    pass
                writer.close()
            await asyncio.sleep(0.05)
            await healthy_roundtrip(port)
            assert gateway.metrics.counter("connections_dropped") >= 1
        finally:
            await gateway.stop()

    run(scenario())


def test_disconnect_with_inflight_decides_releases_admission():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            _reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for i in range(8):
                writer.write((json.dumps({
                    "type": "decide", "id": f"d{i}", "lhs": "A(x)", "rhs": "B(x)",
                    "schema": {"cis": [["A", "B"]]},
                }) + "\n").encode())
            await writer.drain()
            writer.close()  # vanish while decisions are in flight
            for _ in range(500):
                if gateway.admission.inflight == 0:
                    break
                await asyncio.sleep(0.01)
            # every admitted decision was released despite the dead client
            assert gateway.admission.inflight == 0
            await healthy_roundtrip(port)
        finally:
            await gateway.stop()

    run(scenario())
