"""The HTTP/JSON facade: routes, status mapping, keep-alive, robustness."""

import asyncio
import json

from repro.service.gateway import GatewayConfig, GatewayServer, TenantQuota


def run(coro):
    return asyncio.run(coro)


async def http_gateway(**overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("processes", False)
    gateway = GatewayServer(GatewayConfig(**overrides))
    await gateway.start()
    server = await gateway.start_http("127.0.0.1", 0)
    return gateway, server.sockets[0].getsockname()[1]


class HttpClient:
    """A tiny raw HTTP/1.1 client (keep-alive aware) for the facade."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def request(self, method, path, body=None, headers=None):
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        lines = [f"{method} {path} HTTP/1.1", "Host: test"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if payload:
            lines.append(f"Content-Length: {len(payload)}")
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode() + payload
        self.writer.write(raw)
        await self.writer.drain()
        return await self._read_response()

    async def _read_response(self):
        status_line = await asyncio.wait_for(self.reader.readline(), timeout=30)
        assert status_line, "server closed before answering"
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = (await self.reader.readline()).strip()
            if not line:
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await self.reader.readexactly(int(headers["content-length"]))
        return status, headers, json.loads(body)

    def close(self):
        self.writer.close()


def test_decide_roundtrip_and_keep_alive():
    async def scenario():
        gateway, port = await http_gateway()
        try:
            client = await HttpClient.connect(port)
            # two requests on one connection: keep-alive works
            for rid in ("one", "two"):
                status, headers, body = await client.request(
                    "POST", "/v1/decide",
                    {"id": rid, "lhs": "A(x)", "rhs": "A(x)"},
                )
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert body["id"] == rid
                assert body["verdict"]["contained"] is True
            client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_tenant_header_and_quota_429():
    async def scenario():
        gateway, port = await http_gateway(
            tenant_quotas={"metered": TenantQuota(rate=0.001, burst=1)},
        )
        try:
            client = await HttpClient.connect(port)
            status, _, _ = await client.request(
                "POST", "/v1/decide",
                {"lhs": "A(x)", "rhs": "A(x)"},
                headers={"X-Repro-Tenant": "metered"},
            )
            assert status == 200
            status, headers, body = await client.request(
                "POST", "/v1/decide",
                {"lhs": "A(x)", "rhs": "B(x)"},
                headers={"X-Repro-Tenant": "metered"},
            )
            assert status == 429
            assert body["code"] == "overloaded"
            assert body["reason"] == "tenant_quota"
            assert int(headers["retry-after"]) >= 1
            client.close()
            return gateway.metrics.tenant_counter("metered", "admitted")
        finally:
            await gateway.stop()

    assert run(scenario()) == 1


def test_schema_registration_then_ref():
    async def scenario():
        gateway, port = await http_gateway()
        try:
            client = await HttpClient.connect(port)
            status, _, body = await client.request(
                "POST", "/v1/schemas",
                {"ref": "s1", "tbox": {"cis": [["A", "B"]]}},
            )
            assert status == 200
            assert body["type"] == "ack"
            status, _, body = await client.request(
                "POST", "/v1/decide",
                {"lhs": "A(x)", "rhs": "B(x)", "schema_ref": "s1"},
            )
            assert status == 200
            assert body["verdict"]["contained"] is True
            client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_validation_errors_are_400():
    async def scenario():
        gateway, port = await http_gateway()
        try:
            client = await HttpClient.connect(port)
            status, _, body = await client.request(
                "POST", "/v1/decide", {"lhs": "A(x)"}  # missing rhs
            )
            assert status == 400
            assert "rhs" in body["error"]
            client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_unknown_route_is_404_and_bad_method_405():
    async def scenario():
        gateway, port = await http_gateway()
        try:
            client = await HttpClient.connect(port)
            status, _, _ = await client.request("GET", "/nope")
            assert status == 404
            status, _, _ = await client.request("GET", "/v1/decide")
            assert status == 405
            client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_stats_and_healthz():
    async def scenario():
        gateway, port = await http_gateway()
        try:
            client = await HttpClient.connect(port)
            await client.request(
                "POST", "/v1/decide", {"lhs": "A(x)", "rhs": "A(x)"}
            )
            status, _, health = await client.request("GET", "/v1/healthz")
            assert status == 200
            assert health == {"ok": True, "shards": 2}
            status, _, stats = await client.request("GET", "/v1/stats")
            assert status == 200
            assert stats["gateway"]["shards"] == 2
            status, _, deep = await client.request("GET", "/v1/stats?deep=1")
            assert status == 200
            assert len(deep["shard_snapshots"]) == 2
            client.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_malformed_http_answers_400_and_drop_is_counted():
    async def scenario():
        gateway, port = await http_gateway()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"NOT-AN-HTTP-REQUEST-LINE\r\n\r\n")
            await writer.drain()
            first = await asyncio.wait_for(reader.readline(), timeout=30)
            assert b"400" in first
            writer.close()

            # a mid-headers disconnect is a drop, not a crash
            _reader2, writer2 = await asyncio.open_connection("127.0.0.1", port)
            writer2.write(b"POST /v1/decide HTTP/1.1\r\nContent-Le")
            await writer2.drain()
            writer2.close()
            for _ in range(200):
                if gateway.metrics.counter("connections_dropped"):
                    break
                await asyncio.sleep(0.01)
            assert gateway.metrics.counter("connections_dropped") == 1

            # facade still serves
            client = await HttpClient.connect(port)
            status, _, _ = await client.request("GET", "/v1/healthz")
            assert status == 200
            client.close()
        finally:
            await gateway.stop()

    run(scenario())
