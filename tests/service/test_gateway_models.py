"""Typed gateway request models: validation caps and normalization."""

import json

import pytest

from repro.service.gateway.models import (
    MAX_QUERY_LENGTH,
    MAX_SCHEMA_CIS,
    MAX_TIMEOUT_MS,
    DecideModel,
    ModelValidationError,
    SchemaModel,
)
from repro.service.protocol import DEFAULT_TENANT


def _decide(**overrides):
    data = {"lhs": "A(x)", "rhs": "B(x)"}
    data.update(overrides)
    return DecideModel.from_wire(data, default_id="d1")


class TestDecideModel:
    def test_minimal_request(self):
        model = _decide()
        assert model.id == "d1"
        assert model.tenant == DEFAULT_TENANT
        assert model.method == "auto"

    def test_explicit_id_and_tenant(self):
        model = _decide(id="mine", tenant="acme-1")
        assert model.id == "mine"
        assert model.tenant == "acme-1"

    def test_wire_roundtrip_is_canonical(self):
        model = _decide(schema={"cis": [["A", "B"]]}, priority=3)
        wire = json.loads(model.wire_line())
        assert wire["type"] == "decide"
        assert wire["schema"] == {"cis": [["A", "B"]]}
        assert wire["priority"] == 3

    @pytest.mark.parametrize("field", ["lhs", "rhs"])
    def test_missing_or_blank_queries_raise(self, field):
        with pytest.raises(ModelValidationError, match=field):
            _decide(**{field: "   "})

    def test_query_length_cap(self):
        long_query = "A(x)" + "x" * MAX_QUERY_LENGTH
        with pytest.raises(ModelValidationError, match="exceeds"):
            _decide(lhs=long_query)

    def test_schema_ci_cap(self):
        big = {"cis": [["A", "B"]] * (MAX_SCHEMA_CIS + 1)}
        with pytest.raises(ModelValidationError, match="concept inclusions"):
            _decide(schema=big)

    def test_schema_and_ref_are_exclusive(self):
        with pytest.raises(ModelValidationError, match="either"):
            _decide(schema={"cis": []}, schema_ref="s")

    def test_bad_tenant_raises(self):
        for tenant in ("", "has space", "x" * 65, 7):
            with pytest.raises(ModelValidationError, match="tenant"):
                _decide(tenant=tenant)

    def test_unknown_method_raises(self):
        with pytest.raises(ModelValidationError, match="method"):
            _decide(method="psychic")

    def test_priority_must_be_bounded_int(self):
        with pytest.raises(ModelValidationError, match="priority"):
            _decide(priority="high")
        with pytest.raises(ModelValidationError, match="priority"):
            _decide(priority=True)
        with pytest.raises(ModelValidationError, match="priority"):
            _decide(priority=1 << 20)

    def test_unknown_option_raises(self):
        with pytest.raises(ModelValidationError, match="unknown options"):
            _decide(options={"warp_speed": 9})

    def test_timeout_cap(self):
        _decide(options={"timeout_ms": MAX_TIMEOUT_MS})
        with pytest.raises(ModelValidationError, match="timeout_ms"):
            _decide(options={"timeout_ms": MAX_TIMEOUT_MS + 1})

    def test_non_object_payload_raises(self):
        with pytest.raises(ModelValidationError, match="object"):
            DecideModel.from_wire(["not", "a", "dict"])


class TestSchemaModel:
    def test_minimal_registration(self):
        model = SchemaModel.from_wire(
            {"ref": "s1", "tbox": {"cis": [["A", "B"]]}}, default_id="s"
        )
        assert model.ref == "s1"
        assert model.tenant == DEFAULT_TENANT
        wire = json.loads(model.wire_line())
        assert wire["type"] == "schema"
        assert wire["ref"] == "s1"

    def test_missing_ref_raises(self):
        with pytest.raises(ModelValidationError, match="ref"):
            SchemaModel.from_wire({"tbox": {}})

    def test_tbox_must_be_object(self):
        with pytest.raises(ModelValidationError, match="tbox"):
            SchemaModel.from_wire({"ref": "s", "tbox": [1, 2]})

    def test_tbox_ci_cap(self):
        big = {"cis": [["A", "B"]] * (MAX_SCHEMA_CIS + 1)}
        with pytest.raises(ModelValidationError, match="concept inclusions"):
            SchemaModel.from_wire({"ref": "s", "tbox": big})
