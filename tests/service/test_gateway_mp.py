"""Multi-process gateway: forked shard workers, crash recovery, faults.

These run the real deployment shape (fork + socketpair per shard) and are
marked ``gateway_mp`` so ``REPRO_FAST=1`` runners can skip the fork churn.
"""

import asyncio
import json
import os
import signal

import pytest

from repro.resilience import faults
from repro.service.gateway import GatewayConfig, GatewayServer

pytestmark = pytest.mark.gateway_mp

SCHEMA = {"cis": [["A", "B"]]}


def run(coro):
    return asyncio.run(coro)


async def tcp_gateway(**overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("processes", True)
    gateway = GatewayServer(GatewayConfig(**overrides))
    await gateway.start()
    server = await gateway.start_tcp("127.0.0.1", 0)
    return gateway, server.sockets[0].getsockname()[1]


async def ask(reader, writer, obj):
    writer.write((json.dumps(obj) + "\n").encode())
    await writer.drain()
    return json.loads(await asyncio.wait_for(reader.readline(), timeout=60))


def test_process_shards_answer_and_isolate_state():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            ack = await ask(reader, writer, {
                "type": "schema", "ref": "s", "tbox": SCHEMA,
            })
            assert ack["type"] == "ack"
            verdict = await ask(reader, writer, {
                "type": "decide", "id": "d", "lhs": "A(x)", "rhs": "B(x)",
                "schema_ref": "s",
            })
            assert verdict["verdict"]["contained"] is True
            # workers are real processes, distinct from the parent
            pids = {shard.worker.pid for shard in gateway.fleet.shards}
            assert len(pids) == 2
            assert os.getpid() not in pids
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_killed_worker_respawns_and_replays_schemas():
    async def scenario():
        gateway, port = await tcp_gateway()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await ask(reader, writer, {"type": "schema", "ref": "s", "tbox": SCHEMA})
            before = await ask(reader, writer, {
                "type": "decide", "id": "before", "lhs": "A(x)", "rhs": "B(x)",
                "schema_ref": "s",
            })
            assert before["type"] == "verdict"

            for shard in gateway.fleet.shards:
                os.kill(shard.worker.pid, signal.SIGKILL)
            # wait for both respawns
            for _ in range(600):
                if all(s.respawns == 1 and not s.dead for s in gateway.fleet.shards):
                    break
                await asyncio.sleep(0.01)
            assert [s.respawns for s in gateway.fleet.shards] == [1, 1]

            # schema_ref still resolves: the schema log was replayed into
            # the fresh workers
            after = await ask(reader, writer, {
                "type": "decide", "id": "after", "lhs": "A(x)", "rhs": "B(x)",
                "schema_ref": "s",
            })
            assert after["type"] == "verdict"
            assert after["verdict"] == before["verdict"]
            assert gateway.metrics.counter("gateway_shard_respawns") == 2
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_kill_during_inflight_request_still_answers():
    async def scenario():
        gateway, port = await tcp_gateway(shards=1)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await ask(reader, writer, {"type": "schema", "ref": "s", "tbox": SCHEMA})
            pid = gateway.fleet.shards[0].worker.pid
            writer.write((json.dumps({
                "type": "decide", "id": "racing", "lhs": "A(x)", "rhs": "B(x)",
                "schema_ref": "s",
            }) + "\n").encode())
            await writer.drain()
            os.kill(pid, signal.SIGKILL)
            # pending envelopes are resubmitted after the respawn, so the
            # client still gets its answer (decisions are deterministic)
            response = json.loads(await asyncio.wait_for(
                reader.readline(), timeout=60))
            assert response["id"] == "racing"
            assert response["type"] == "verdict"
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())


def test_fault_site_kills_worker_and_fleet_recovers():
    async def scenario():
        gateway, port = await tcp_gateway(shards=1)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            response = await ask(reader, writer, {
                "type": "decide", "id": "boom", "lhs": "A(x)", "rhs": "A(x)",
            })
            # the worker died mid-handle; the envelope was resubmitted to
            # the respawned worker, which answers normally
            assert response["type"] == "verdict"
            assert gateway.fleet.shards[0].respawns == 1
            writer.close()
        finally:
            await gateway.stop()

    # install before start: forked workers inherit the plan
    with faults.injected_faults("gateway.shard.handle:kill_worker:1"):
        run(scenario())


def test_respawn_cap_marks_shard_dead_with_structured_errors():
    async def scenario():
        gateway, port = await tcp_gateway(shards=1, max_respawns=0)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            os.kill(gateway.fleet.shards[0].worker.pid, signal.SIGKILL)
            for _ in range(600):
                if gateway.fleet.shards[0].dead:
                    break
                await asyncio.sleep(0.01)
            assert gateway.fleet.shards[0].dead
            response = await ask(reader, writer, {
                "type": "decide", "id": "d", "lhs": "A(x)", "rhs": "A(x)",
            })
            assert response["type"] == "error"
            assert "shard unavailable" in response["error"]
            assert gateway.metrics.shard_counter(0, "dead") == 1
            writer.close()
        finally:
            await gateway.stop()

    run(scenario())
