"""SIGTERM graceful drain against a real ``repro serve`` gateway process:
in-flight decisions complete and journal, new requests get the structured
``draining`` rejection, and the process exits 0."""

import asyncio
import json
import os
import signal
import subprocess
import sys

import pytest

pytestmark = pytest.mark.gateway_mp

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def start_gateway(tmp_path, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.pop("REPRO_FAULTS", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--tcp", "127.0.0.1:0", "--shards", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    # the CLI prints "repro gateway: 1 shard(s) on tcp:127.0.0.1:PORT"
    line = proc.stderr.readline()
    assert "tcp:" in line, f"unexpected gateway banner: {line!r}"
    port = int(line.rsplit(":", 1)[1])
    return proc, port


async def jsonl(port):
    return await asyncio.open_connection("127.0.0.1", port)


async def ask(reader, writer, obj, timeout=30):
    writer.write((json.dumps(obj) + "\n").encode())
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    assert line, "connection closed unexpectedly"
    return json.loads(line)


def test_sigterm_drains_journals_and_exits_zero(tmp_path):
    # a one-shot delay in the shard's scheduler keeps one decision in
    # flight long enough to observe the drain window deterministically
    proc, port = start_gateway(
        tmp_path, {"REPRO_FAULTS": "scheduler.dispatch:delay:1:1.0"}
    )

    async def scenario():
        reader, writer = await jsonl(port)
        # in-flight decision (delayed ~1s inside the worker)
        writer.write((json.dumps({
            "type": "decide", "id": "slow", "lhs": "A(x)", "rhs": "B(x)",
        }) + "\n").encode())
        await writer.drain()
        await asyncio.sleep(0.3)  # let it reach the shard
        proc.send_signal(signal.SIGTERM)
        await asyncio.sleep(0.1)
        # a second client arriving mid-drain is rejected, structured
        reader2, writer2 = await jsonl(port)
        late = await ask(reader2, writer2, {
            "type": "decide", "id": "late", "lhs": "A(x)", "rhs": "A(x)",
        })
        assert late["type"] == "error"
        assert late["code"] == "draining"
        writer2.close()
        # the in-flight decision still answers with its verdict
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        slow = json.loads(line)
        assert slow["type"] == "verdict"
        assert slow["id"] == "slow"
        assert slow["verdict"]["contained"] is False
        writer.close()

    asyncio.run(scenario())
    assert proc.wait(timeout=30) == 0
    proc.stderr.close()
    # the drained decision was journaled before exit
    journal = tmp_path / "cache" / "shard-0" / "decisions.jsonl"
    assert journal.exists()
    entries = [json.loads(line) for line in journal.read_text().splitlines()]
    assert any(entry["verdict"]["contained"] is False for entry in entries)


def test_sigint_still_stops_promptly(tmp_path):
    proc, port = start_gateway(tmp_path)

    async def scenario():
        reader, writer = await jsonl(port)
        verdict = await ask(reader, writer, {
            "type": "decide", "id": "d", "lhs": "A(x)", "rhs": "A(x)",
        })
        assert verdict["verdict"]["contained"] is True
        writer.close()

    asyncio.run(scenario())
    proc.send_signal(signal.SIGINT)
    assert proc.wait(timeout=30) == 0
    proc.stderr.close()


def test_idle_sigterm_drain_exits_zero(tmp_path):
    """A drain with nothing in flight exits 0 promptly."""
    proc, _port = start_gateway(tmp_path)
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0
    proc.stderr.close()
