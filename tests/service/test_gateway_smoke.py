"""Tier-1 smoke: the E23 gateway benchmark in ``--quick`` mode.

Runs the real multi-process gateway (fork, admission, fairness, verdict
bit-identity) end to end with one-tenth the full load.  Skipped on
single-CPU runners — forked shard workers time-slicing one core make the
smoke pointlessly slow — and under ``REPRO_FAST=1`` via the
``gateway_mp`` marker.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.gateway_mp

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_bench_gateway_quick():
    if (os.cpu_count() or 1) < 2:
        pytest.skip("multi-process gateway smoke needs >= 2 CPUs")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "bench_gateway.py"),
         "--quick"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"bench_gateway --quick failed\nstdout:\n{result.stdout}"
        f"\nstderr:\n{result.stderr}"
    )
    assert "bit-identical to the sequential server" in result.stdout
