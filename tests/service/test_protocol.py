"""The service wire format: parsing, validation, option materialization."""

import json

import pytest

from repro.core.containment import ContainmentOptions
from repro.service.protocol import (
    ProtocolError,
    build_options,
    encode_response,
    parse_request,
    verdict_response,
)


class TestParseRequest:
    def test_decide_minimal(self):
        request = parse_request(
            json.dumps({"type": "decide", "lhs": "A(x)", "rhs": "B(x)"}), seq=3
        )
        assert request.type == "decide"
        assert request.id == "req-3"
        assert request.lhs == "A(x)" and request.rhs == "B(x)"
        assert request.schema is None and request.schema_ref is None
        assert request.method == "auto" and request.priority == 0

    def test_decide_full(self):
        request = parse_request(
            json.dumps(
                {
                    "type": "decide",
                    "id": "r9",
                    "lhs": "A(x)",
                    "rhs": "B(x)",
                    "schema": {"cis": [["A", "B"]]},
                    "method": "direct",
                    "priority": -2,
                    "options": {"workers": 2, "incremental": True, "max_nodes": 6},
                }
            ),
            seq=1,
        )
        assert request.id == "r9"
        assert request.schema == {"cis": [["A", "B"]]}
        assert request.method == "direct" and request.priority == -2
        assert request.options["max_nodes"] == 6

    def test_implicit_decide_type(self):
        assert parse_request('{"lhs": "A(x)", "rhs": "B(x)"}', seq=1).type == "decide"

    def test_schema_registration(self):
        request = parse_request(
            json.dumps({"type": "schema", "ref": "s1", "tbox": {"cis": []}}), seq=1
        )
        assert request.type == "schema" and request.ref == "s1"

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"type": "explode"}',
            '{"type": "decide", "lhs": "A(x)"}',
            '{"type": "decide", "lhs": "", "rhs": "B(x)"}',
            '{"type": "decide", "lhs": "A(x)", "rhs": "B(x)", "method": "magic"}',
            '{"type": "decide", "lhs": "A(x)", "rhs": "B(x)", "priority": "high"}',
            '{"type": "decide", "lhs": "A(x)", "rhs": "B(x)", "options": {"bogus": 1}}',
            '{"type": "decide", "lhs": "A(x)", "rhs": "B(x)", "schema": {"cis": []}, "schema_ref": "s"}',
            '{"type": "schema", "ref": "", "tbox": {}}',
            '{"type": "schema", "ref": "s1"}',
        ],
    )
    def test_rejects(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line, seq=1)


class TestBuildOptions:
    def test_defaults(self):
        assert build_options({}) == ContainmentOptions()

    def test_budgets_and_flags(self):
        options = build_options(
            {
                "max_word_length": 3,
                "max_expansions": 50,
                "workers": 2,
                "incremental": False,
                "max_nodes": 7,
                "max_steps": 999,
            }
        )
        assert options.max_word_length == 3
        assert options.max_expansions == 50
        assert options.workers == 2
        assert options.incremental is False
        assert options.limits.max_nodes == 7
        assert options.limits.max_steps == 999

    def test_null_incremental_keeps_default(self):
        assert build_options({"incremental": None}).incremental is None


class TestResponses:
    def test_encode_deterministic_single_line(self):
        payload = verdict_response("r1", {"contained": True}, "computed", 1.23456)
        first, second = encode_response(payload), encode_response(dict(payload))
        assert first == second
        assert "\n" not in first
        assert json.loads(first)["elapsed_ms"] == 1.235
