"""Protocol robustness: budget validation and line-level fuzzing.

The server loop contract is absolute — *no* input line, however
malformed, may raise out of ``handle_line``.  Hypothesis throws arbitrary
text and arbitrary JSON structures at it; every line must come back as a
normal response list (usually a single structured ``error``).
"""

import json
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.protocol import ProtocolError, parse_request
from repro.service.server import ContainmentServer


class TestBudgetValidation:
    @pytest.mark.parametrize("name", ["max_nodes", "max_steps", "timeout_ms"])
    @pytest.mark.parametrize("bad", [-1, True, False, 1.5, "100", None, [1]])
    def test_bad_budget_rejected(self, name, bad):
        line = json.dumps({
            "type": "decide", "id": "x", "lhs": "A(x)", "rhs": "A(x)",
            "options": {name: bad},
        })
        with pytest.raises(ProtocolError, match=name):
            parse_request(line, 1)

    @pytest.mark.parametrize("name", ["max_nodes", "max_steps", "timeout_ms"])
    @pytest.mark.parametrize("good", [0, 1, 250, 10**9])
    def test_good_budget_accepted(self, name, good):
        line = json.dumps({
            "type": "decide", "id": "x", "lhs": "A(x)", "rhs": "A(x)",
            "options": {name: good},
        })
        request = parse_request(line, 1)
        assert request.options[name] == good

    def test_unknown_request_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            parse_request('{"type": "explode"}', 1)

    def test_unknown_option_rejected(self):
        line = json.dumps({
            "type": "decide", "id": "x", "lhs": "A(x)", "rhs": "A(x)",
            "options": {"timeout": 5},
        })
        with pytest.raises(ProtocolError, match="unknown options"):
            parse_request(line, 1)


# one server for the whole fuzz run: survival across many hostile lines is
# exactly the property under test
_FUZZ_SERVER = ContainmentServer(use_cache=False, pool_reuse=False)


def _survives(line: str):
    responses, stop = _FUZZ_SERVER.handle_line(line)
    assert isinstance(responses, list)
    for response in responses:
        assert isinstance(response, dict) and "type" in response
    return responses, stop


_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)

_json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet=string.printable, max_size=120))
def test_arbitrary_text_never_kills_the_loop(line):
    _survives(line)


@settings(max_examples=200, deadline=None)
@given(_json_values)
def test_arbitrary_json_never_kills_the_loop(value):
    _survives(json.dumps(value))


@settings(max_examples=100, deadline=None)
@given(
    st.fixed_dictionaries(
        {},
        optional={
            "type": st.sampled_from(
                ["decide", "schema", "stats", "ping", "flush", "nonsense"]
            ),
            "id": _json_scalars,
            "lhs": _json_scalars,
            "rhs": _json_scalars,
            "schema": _json_values,
            "schema_ref": _json_scalars,
            "method": _json_scalars,
            "priority": _json_scalars,
            "options": _json_values,
            "ref": _json_scalars,
            "tbox": _json_values,
        },
    )
)
def test_requestish_objects_never_kill_the_loop(payload):
    responses, stop = _survives(json.dumps(payload))
    assert stop is False  # only a well-formed shutdown stops the server
