"""The decision scheduler: dedup, priority execution, deterministic output."""

import json

from repro.core.containment import ContainmentOptions, is_contained
from repro.dl.tbox import TBox
from repro.io import tbox_to_dict, verdict_to_dict
from repro.service.cache import DecisionCache
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import Request, parse_request
from repro.service.scheduler import DecisionScheduler


def _tbox_dict():
    return tbox_to_dict(
        TBox.of(
            [("Customer", "forall owns.CredCard"), ("Customer", "exists owns.CredCard")],
            name="cards",
        )
    )


def _decide(seq, id=None, lhs="owns(x,y)", rhs="CredCard(y)", **extra):
    payload = {"type": "decide", "id": id or f"r{seq}", "lhs": lhs, "rhs": rhs}
    payload.update(extra)
    return parse_request(json.dumps(payload), seq=seq)


class TestDedupAndOrdering:
    def test_identical_requests_collapse(self):
        metrics = ServiceMetrics()
        scheduler = DecisionScheduler(metrics=metrics)
        for seq in range(1, 4):
            assert scheduler.submit(_decide(seq)) is None
        responses = scheduler.drain()
        assert [r["id"] for r in responses] == ["r1", "r2", "r3"]
        assert [r["source"] for r in responses] == ["computed", "dedup", "dedup"]
        assert metrics.counter("decisions_executed") == 1
        assert metrics.counter("dedup_collapses") == 2
        # collapsed responses carry the identical verdict payload
        assert responses[0]["verdict"] == responses[1]["verdict"] == responses[2]["verdict"]

    def test_priority_orders_execution_not_emission(self):
        scheduler = DecisionScheduler()
        scheduler.submit(_decide(1, id="late", priority=5))
        scheduler.submit(_decide(2, id="early", priority=-5))
        responses = scheduler.drain()
        # emission stays in arrival order...
        assert [r["id"] for r in responses] == ["late", "early"]
        # ...but the high-priority request ran first and owns the computation
        assert {r["id"]: r["source"] for r in responses} == {
            "early": "computed", "late": "dedup",
        }

    def test_different_options_do_not_collapse(self):
        metrics = ServiceMetrics()
        scheduler = DecisionScheduler(metrics=metrics)
        scheduler.submit(_decide(1))
        scheduler.submit(_decide(2, options={"max_word_length": 3}))
        scheduler.drain()
        assert metrics.counter("decisions_executed") == 2


class TestVerdictFidelity:
    def test_bit_identical_to_sequential_calls(self):
        scheduler = DecisionScheduler()
        cases = [
            ("owns(x,y)", "CredCard(y)", None),
            ("Customer(x), owns(x,y)", "owns(x,y), CredCard(y)", _tbox_dict()),
            ("A(x)", "A(x); B(x)", None),
        ]
        for seq, (lhs, rhs, schema) in enumerate(cases, 1):
            scheduler.submit(_decide(seq, lhs=lhs, rhs=rhs, schema=schema))
        responses = scheduler.drain()
        for (lhs, rhs, schema), response in zip(cases, responses):
            tbox = None
            if schema is not None:
                from repro.io import tbox_from_dict

                tbox = tbox_from_dict(schema)
            expected = is_contained(
                lhs, rhs, tbox, options=ContainmentOptions(use_cache=False)
            )
            assert response["verdict"] == verdict_to_dict(expected)

    def test_schema_session_reused_across_requests(self):
        metrics = ServiceMetrics()
        scheduler = DecisionScheduler(metrics=metrics)
        scheduler.submit(_decide(1, lhs="Customer(x)", schema=_tbox_dict()))
        scheduler.submit(_decide(2, lhs="Company(x)", schema=_tbox_dict()))
        scheduler.drain()
        assert metrics.counter("sessions_created") == 1
        assert metrics.counter("kernel_reuse") == 1


class TestCacheIntegration:
    def test_persistent_hits_skip_execution(self, tmp_path):
        first = DecisionScheduler(cache=DecisionCache(tmp_path))
        first.submit(_decide(1))
        (cold,) = first.drain()
        metrics = ServiceMetrics()
        warm = DecisionScheduler(cache=DecisionCache(tmp_path, metrics), metrics=metrics)
        warm.submit(_decide(1))
        (hit,) = warm.drain()
        assert hit["source"] == "cache"
        assert hit["verdict"] == cold["verdict"]
        assert metrics.counter("decisions_executed") == 0


class TestValidation:
    def test_parse_error_returns_error_response(self):
        scheduler = DecisionScheduler()
        error = scheduler.submit(_decide(1, lhs="not a query (("))
        assert error is not None and error["type"] == "error"
        assert scheduler.pending() == 0

    def test_unknown_schema_ref(self):
        scheduler = DecisionScheduler()
        error = scheduler.submit(_decide(1, schema_ref="ghost"))
        assert error["type"] == "error" and "ghost" in error["error"]
