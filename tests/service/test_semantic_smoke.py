"""CI smoke for the semantic-cache benchmark (E24).

Runs ``benchmarks/bench_semantic_cache.py --quick`` — trimmed seed/warm
workloads through semantic-on and semantic-off servers — and fails if
verdicts diverge across the cache setting, a warm near-duplicate phase
falls below the ≥half inference-hit floor, or a semantically served
request cost a kernel search.  Marked ``semcache_smoke`` so REPRO_FAST=1
can skip the subprocess round-trip like the multi-process gateway tests.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH = REPO_ROOT / "benchmarks" / "bench_semantic_cache.py"


@pytest.mark.semcache_smoke
def test_quick_semantic_smoke_inference_sound_and_warm():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"semantic cache smoke failed (exit {proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    assert "VERDICT DIVERGENCE" not in proc.stderr
