"""The wire transports: pipe conversations and the local socket mode."""

import io
import json
import socket
import threading

from repro.dl.tbox import TBox
from repro.io import tbox_to_dict
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.server import ContainmentServer


def _tbox_dict():
    return tbox_to_dict(
        TBox.of(
            [("Customer", "forall owns.CredCard"), ("Customer", "exists owns.CredCard")],
            name="cards",
        )
    )


def _pipe(server, requests):
    out = io.StringIO()
    server.serve_pipe(
        io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"), out
    )
    return [json.loads(line) for line in out.getvalue().splitlines()]


def _server(tmp_path=None):
    return ContainmentServer(
        cache_dir=tmp_path, use_cache=tmp_path is not None, pool_reuse=False
    )


class TestPipeMode:
    def test_conversation(self, tmp_path):
        responses = _pipe(_server(tmp_path), [
            {"type": "ping", "id": "p"},
            {"type": "schema", "ref": "s1", "tbox": _tbox_dict()},
            {"type": "decide", "id": "a", "lhs": "Customer(x), owns(x,y)",
             "rhs": "owns(x,y), CredCard(y)", "schema_ref": "s1"},
            {"type": "decide", "id": "b", "lhs": "owns(x,y)", "rhs": "CredCard(y)"},
            {"type": "stats", "id": "st"},
            {"type": "shutdown", "id": "end"},
        ])
        kinds = [r["type"] for r in responses]
        assert kinds == ["pong", "ack", "stats", "verdict", "verdict", "bye"]
        verdicts = {r["id"]: r for r in responses if r["type"] == "verdict"}
        assert verdicts["a"]["verdict"]["contained"] is True
        assert verdicts["b"]["verdict"]["contained"] is False
        assert verdicts["b"]["verdict"]["countermodel"] is not None

    def test_eof_is_implicit_flush(self):
        responses = _pipe(_server(), [
            {"type": "decide", "id": "a", "lhs": "A(x)", "rhs": "A(x); B(x)"},
        ])
        assert responses[-1]["type"] == "verdict"
        assert responses[-1]["verdict"]["contained"] is True

    def test_flush_mid_stream(self):
        responses = _pipe(_server(), [
            {"type": "decide", "id": "a", "lhs": "A(x)", "rhs": "A(x)"},
            {"type": "flush"},
            {"type": "decide", "id": "b", "lhs": "B(x)", "rhs": "B(x)"},
        ])
        assert [r.get("id") for r in responses] == ["a", "b"]

    def test_malformed_lines_answer_errors_and_continue(self):
        server = _server()
        out = io.StringIO()
        server.serve_pipe(
            io.StringIO(
                "this is not json\n"
                '{"type": "decide", "id": "ok", "lhs": "A(x)", "rhs": "A(x)"}\n'
            ),
            out,
        )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["type"] == "error"
        assert responses[1]["type"] == "verdict" and responses[1]["id"] == "ok"
        assert server.metrics.counter("errors") == 1

    def test_stats_surface(self, tmp_path):
        responses = _pipe(_server(tmp_path), [
            {"type": "decide", "id": "a", "lhs": "owns(x,y)", "rhs": "CredCard(y)"},
            {"type": "flush"},
            {"type": "stats", "id": "st"},
        ])
        stats = responses[-1]["stats"]
        assert stats["counters"]["decisions_executed"] == 1
        assert stats["cache"]["writes"] == 1
        assert stats["latency_ms"]["count"] == 1
        assert stats["queue"]["high_water"] == 1


class TestSocketMode:
    def test_two_connections_share_state(self, tmp_path):
        server = _server(tmp_path)
        path = tmp_path / "repro.sock"
        thread = threading.Thread(target=server.serve_socket, args=(path,), daemon=True)
        thread.start()

        def talk(requests):
            for _ in range(200):
                try:
                    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    client.connect(str(path))
                    break
                except (FileNotFoundError, ConnectionRefusedError):
                    client.close()
                    threading.Event().wait(0.01)
            else:
                raise AssertionError("server socket never came up")
            with client:
                client.sendall(
                    ("\n".join(json.dumps(r) for r in requests) + "\n").encode()
                )
                client.shutdown(socket.SHUT_WR)
                data = b""
                while chunk := client.recv(65536):
                    data += chunk
            return [json.loads(line) for line in data.decode().splitlines()]

        first = talk([
            {"type": "decide", "id": "a", "lhs": "Customer(x), owns(x,y)",
             "rhs": "owns(x,y), CredCard(y)", "schema": _tbox_dict()},
        ])
        second = talk([
            {"type": "decide", "id": "b", "lhs": "Customer(x), owns(x,y)",
             "rhs": "owns(x,y), CredCard(y)", "schema": _tbox_dict()},
            {"type": "shutdown", "id": "end"},
        ])
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert first[0]["type"] == "verdict" and first[0]["source"] == "computed"
        # the second connection collapses onto the first connection's work
        assert second[0]["source"] == "dedup"
        assert second[0]["verdict"] == first[0]["verdict"]
        assert second[-1]["type"] == "bye"
        assert not path.exists()


class TestStreamSequencing:
    def test_default_ids_restart_per_stream(self):
        """Each connection numbers its requests from 1 — the sequence is
        per-stream state, not a server-wide counter leaking across
        clients."""
        server = _server()
        for _round in range(2):
            stream = server.new_stream()
            responses, _stop = server.handle_line(
                json.dumps({"type": "decide", "lhs": "A(x)", "rhs": "A(x)"}),
                stream,
            )
            responses, _stop = server.handle_line(
                json.dumps({"type": "flush"}), stream
            )
            # a fresh stream starts at req-1 even after another stream ran
            assert [r["id"] for r in responses] == ["req-1"]

    def test_interleaved_streams_do_not_share_sequence(self):
        server = _server()
        alpha, beta = server.new_stream(), server.new_stream()
        line = json.dumps({"type": "ping"})
        (pong_a1,), _ = server.handle_line(line, alpha)
        (pong_b1,), _ = server.handle_line(line, beta)
        (pong_a2,), _ = server.handle_line(line, alpha)
        assert pong_a1["id"] == "req-1"
        assert pong_b1["id"] == "req-1"
        assert pong_a2["id"] == "req-2"


class TestMetricsMath:
    def test_percentiles_nearest_rank(self):
        samples = [float(n) for n in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.90) == 90.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0

    def test_snapshot_counters(self):
        metrics = ServiceMetrics()
        metrics.count("requests")
        metrics.count("requests", 2)
        metrics.observe_latency_ms(5.0)
        metrics.queue_changed(3)
        metrics.queue_changed(0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["requests"] == 3
        assert snapshot["queue"] == {"depth": 0, "high_water": 3}
        assert snapshot["latency_ms"]["p50"] == 5.0
