"""Direct unit tests for service metrics: percentile edge cases + snapshot."""

import pytest

from repro.service.metrics import ServiceMetrics, percentile


class TestPercentile:
    def test_empty_samples_yield_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert percentile([42.0], fraction) == 42.0

    def test_fraction_zero_is_minimum(self):
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_fraction_one_is_maximum(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0

    def test_nearest_rank_on_unsorted_input(self):
        samples = [10.0, 40.0, 20.0, 30.0]
        assert percentile(samples, 0.25) == 10.0
        assert percentile(samples, 0.50) == 20.0
        assert percentile(samples, 0.75) == 30.0
        assert percentile(samples, 0.90) == 40.0

    def test_does_not_mutate_input(self):
        samples = [3.0, 1.0, 2.0]
        percentile(samples, 0.5)
        assert samples == [3.0, 1.0, 2.0]

    @pytest.mark.parametrize("fraction", [-0.1, 1.1, 2.0, -1.0])
    def test_out_of_range_fraction_raises(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0], fraction)


class TestSnapshot:
    def test_snapshot_includes_obs_section(self):
        snap = ServiceMetrics().snapshot()
        assert "obs" in snap
        assert set(snap["obs"]) == {"counters", "phases"}

    def test_latency_percentiles(self):
        metrics = ServiceMetrics()
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.observe_latency_ms(value)
        latency = metrics.snapshot()["latency_ms"]
        assert latency["count"] == 4
        assert latency["p50"] == 2.0
        assert latency["max"] == 4.0

    def test_empty_metrics_snapshot_is_all_zeros(self):
        latency = ServiceMetrics().snapshot()["latency_ms"]
        assert latency == {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
