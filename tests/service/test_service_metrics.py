"""Direct unit tests for service metrics: percentile edge cases + snapshot
consistency, including under concurrent writers (the gateway feeds one
shared sink from many tasks and the fleet's reader threads)."""

import threading

import pytest

from repro.service.metrics import ServiceMetrics, latency_summary, percentile


class TestPercentile:
    def test_empty_samples_yield_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert percentile([42.0], fraction) == 42.0

    def test_fraction_zero_is_minimum(self):
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_fraction_one_is_maximum(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0

    def test_nearest_rank_on_unsorted_input(self):
        samples = [10.0, 40.0, 20.0, 30.0]
        assert percentile(samples, 0.25) == 10.0
        assert percentile(samples, 0.50) == 20.0
        assert percentile(samples, 0.75) == 30.0
        assert percentile(samples, 0.90) == 40.0

    def test_does_not_mutate_input(self):
        samples = [3.0, 1.0, 2.0]
        percentile(samples, 0.5)
        assert samples == [3.0, 1.0, 2.0]

    @pytest.mark.parametrize("fraction", [-0.1, 1.1, 2.0, -1.0])
    def test_out_of_range_fraction_raises(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0], fraction)

    def test_boundary_fractions_are_exact_endpoints(self):
        samples = list(range(1, 101))
        # nearest-rank at the exact boundaries: no off-by-one at either end
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 0.01) == 1
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.0) == 100

    def test_two_samples_split_at_half(self):
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([1.0, 2.0], 0.50001) == 2.0


class TestLatencySummary:
    def test_summary_block_shape(self):
        block = latency_summary([float(v) for v in range(1, 101)])
        assert block == {
            "count": 100, "p50": 50.0, "p90": 90.0, "p95": 95.0,
            "p99": 99.0, "max": 100.0,
        }

    def test_empty_summary_is_zeros(self):
        block = latency_summary([])
        assert block["count"] == 0
        assert block["p95"] == 0.0


class TestSnapshot:
    def test_snapshot_includes_obs_section(self):
        snap = ServiceMetrics().snapshot()
        assert "obs" in snap
        assert set(snap["obs"]) == {"counters", "phases"}

    def test_latency_percentiles(self):
        metrics = ServiceMetrics()
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.observe_latency_ms(value)
        latency = metrics.snapshot()["latency_ms"]
        assert latency["count"] == 4
        assert latency["p50"] == 2.0
        assert latency["max"] == 4.0

    def test_empty_metrics_snapshot_is_all_zeros(self):
        latency = ServiceMetrics().snapshot()["latency_ms"]
        assert latency == {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}

    def test_labeled_families_absent_until_fed(self):
        snap = ServiceMetrics().snapshot()
        # sequential-server snapshots keep their historical shape
        for key in ("tenants", "shards", "gauges", "latency_ms_by_outcome"):
            assert key not in snap

    def test_labeled_families_appear_once_fed(self):
        metrics = ServiceMetrics()
        metrics.tenant_count("acme", "admitted")
        metrics.shard_count(0, "dispatched", 3)
        metrics.gauge_set("gateway.inflight", 7)
        metrics.gauge_set("gateway.inflight", 2)
        metrics.observe_latency_ms(1.5, outcome="admitted")
        metrics.observe_latency_ms(0.1, outcome="rejected")
        snap = metrics.snapshot()
        assert snap["tenants"] == {"acme": {"admitted": 1}}
        assert snap["shards"] == {"0": {"dispatched": 3}}
        assert snap["gauges"]["gateway.inflight"] == {"value": 2, "high_water": 7}
        assert snap["latency_ms_by_outcome"]["admitted"]["count"] == 1
        assert snap["latency_ms_by_outcome"]["rejected"]["p95"] == 0.1

    def test_gauge_add_tracks_high_water(self):
        metrics = ServiceMetrics()
        assert metrics.gauge_add("g", 5) == 5
        assert metrics.gauge_add("g", -3) == 2
        assert metrics.gauge("g") == 2
        assert metrics.gauge_high_water("g") == 5


class TestConcurrency:
    """The gateway feeds one sink from the event loop plus fleet reader
    threads — updates must never lose increments or tear a snapshot."""

    THREADS = 8
    ROUNDS = 500

    def _hammer(self, work):
        errors = []

        def body(thread_id):
            try:
                for i in range(self.ROUNDS):
                    work(thread_id, i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=body, args=(t,)) for t in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_concurrent_counts_are_exact(self):
        metrics = ServiceMetrics()

        def work(thread_id, i):
            metrics.count("shared")
            metrics.tenant_count(f"tenant{thread_id % 4}", "admitted")
            metrics.shard_count(thread_id % 2, "dispatched")

        self._hammer(work)
        total = self.THREADS * self.ROUNDS
        assert metrics.counter("shared") == total
        tenant_sum = sum(
            metrics.tenant_counter(f"tenant{t}", "admitted") for t in range(4)
        )
        assert tenant_sum == total
        assert (
            metrics.shard_counter(0, "dispatched")
            + metrics.shard_counter(1, "dispatched")
        ) == total

    def test_concurrent_latency_and_queue_updates(self):
        metrics = ServiceMetrics()

        def work(thread_id, i):
            metrics.observe_latency_ms(
                float(i), outcome="admitted" if i % 2 else "rejected"
            )
            metrics.queue_changed(i)
            metrics.gauge_add("inflight", 1)

        self._hammer(work)
        total = self.THREADS * self.ROUNDS
        snap = metrics.snapshot()
        assert snap["latency_ms"]["count"] == total
        by_outcome = snap["latency_ms_by_outcome"]
        assert by_outcome["admitted"]["count"] + by_outcome["rejected"]["count"] == total
        assert snap["queue"]["high_water"] == self.ROUNDS - 1
        assert metrics.gauge("inflight") == total

    def test_snapshot_under_concurrent_writes_is_consistent(self):
        metrics = ServiceMetrics()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                metrics.count("w")
                metrics.observe_latency_ms(float(i % 100), outcome="admitted")
                metrics.tenant_count("t", "admitted")
                i += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                snap = metrics.snapshot()
                # a torn snapshot would break JSON-ability or drop keys
                assert snap["latency_ms"]["count"] >= 0
                if "latency_ms_by_outcome" in snap:
                    block = snap["latency_ms_by_outcome"]["admitted"]
                    assert block["max"] >= block["p50"] >= 0.0
        finally:
            stop.set()
            for thread in threads:
                thread.join()
