"""Schema sessions: one normalization per distinct schema, ref registry."""

from repro.dl.normalize import normalize
from repro.dl.tbox import TBox
from repro.io import tbox_to_dict
from repro.service.metrics import ServiceMetrics
from repro.service.sessions import SessionManager, reset_process_caches


def _tbox():
    return TBox.of(
        [("Customer", "forall owns.CredCard"), ("Customer", "exists owns.CredCard")],
        name="cards",
    )


class TestSessionManager:
    def test_schema_less_decisions_have_no_session(self):
        assert SessionManager().session_for(None) is None

    def test_distinct_schema_normalized_once(self):
        metrics = ServiceMetrics()
        manager = SessionManager(metrics)
        first = manager.session_for(_tbox())
        second = manager.session_for(_tbox())
        assert first is second
        assert len(manager) == 1
        assert metrics.counter("sessions_created") == 1
        assert metrics.counter("sessions_reused") == 1

    def test_wire_dict_and_tbox_share_a_session(self):
        manager = SessionManager()
        from_dict = manager.session_for(tbox_to_dict(_tbox()))
        from_tbox = manager.session_for(_tbox())
        assert from_dict is from_tbox

    def test_prenormalized_schema_accepted(self):
        manager = SessionManager()
        session = manager.session_for(normalize(_tbox()))
        assert session.tbox.content_key() == normalize(_tbox()).content_key()

    def test_ref_registry(self):
        manager = SessionManager()
        registered = manager.register("s1", tbox_to_dict(_tbox()))
        assert manager.by_ref("s1") is registered
        assert manager.by_ref("unknown") is None
        # registering a ref does not duplicate the underlying session
        assert manager.session_for(_tbox()) is registered

    def test_wide_signature_registration_skips_vec_prebuild(self):
        # 20 concept names → 2^20 candidate rows, past the decision
        # procedures' max_types guard: warm() must not enumerate the table
        # (registration used to hang/OOM here with numpy installed)
        names = [f"C{i}" for i in range(20)]
        wide = TBox.of(
            [(names[i], names[i + 1]) for i in range(len(names) - 1)],
            name="wide",
        )
        session = SessionManager().session_for(wide)
        assert session is not None
        from repro.kernel import vec

        key = (
            session.tbox.content_key(),
            tuple(sorted(session.tbox.concept_names())),
        )
        assert key not in vec._TABLE_CACHE

    def test_snapshot_reports_fragment(self):
        manager = SessionManager()
        manager.session_for(_tbox())
        (entry,) = manager.snapshot()
        assert entry["name"] == "cards"
        assert entry["fragment"] in ("ALC", "ALCI", "ALCQ", "ALCQI")


def test_reset_process_caches_drops_decision_memo():
    from repro.core.containment import ContainmentOptions, is_contained
    from repro.core.containment import decision_memo_stats

    is_contained("A(x)", "A(x); B(x)", _tbox())
    reset_process_caches()
    assert decision_memo_stats()["entries"] == 0
