"""Crash recovery on socket startup: stale socket files are reclaimed."""

import json
import socket
import threading

import pytest

from repro.service.server import ContainmentServer


def _server():
    return ContainmentServer(use_cache=False, pool_reuse=False)


def _talk(path, requests):
    for _ in range(200):
        try:
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            client.connect(str(path))
            break
        except (FileNotFoundError, ConnectionRefusedError):
            client.close()
            threading.Event().wait(0.01)
    else:
        raise AssertionError("server socket never came up")
    with client:
        client.sendall(
            ("\n".join(json.dumps(r) for r in requests) + "\n").encode()
        )
        client.shutdown(socket.SHUT_WR)
        data = b""
        while chunk := client.recv(65536):
            data += chunk
    return [json.loads(line) for line in data.decode().splitlines()]


def test_stale_socket_file_is_reclaimed(tmp_path):
    path = tmp_path / "repro.sock"
    # a previous server that crashed without unlinking its socket
    crashed = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    crashed.bind(str(path))
    crashed.close()
    assert path.exists()

    server = _server()
    thread = threading.Thread(target=server.serve_socket, args=(path,), daemon=True)
    thread.start()
    responses = _talk(path, [
        {"type": "ping", "id": "p"},
        {"type": "shutdown", "id": "end"},
    ])
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert [r["type"] for r in responses] == ["pong", "bye"]
    assert server.metrics.counter("stale_socket_removed") == 1


def test_regular_file_at_socket_path_is_refused(tmp_path):
    path = tmp_path / "precious.txt"
    path.write_text("not a socket\n")
    with pytest.raises(OSError, match="not a socket"):
        _server().serve_socket(path)
    # the refusal must leave the file untouched
    assert path.read_text() == "not a socket\n"


def test_losing_the_unlink_race_is_success(tmp_path, monkeypatch):
    """Another server unlinking between our lstat and unlink is fine.

    Deterministic replay of the race: the rival's unlink is injected right
    before ours, so ours raises ``FileNotFoundError`` — which must count as
    success (the stale file is gone either way), not crash startup."""
    from pathlib import Path

    path = tmp_path / "contested.sock"
    stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stale.bind(str(path))
    stale.close()

    original_unlink = Path.unlink

    def racing_unlink(self, *args, **kwargs):
        original_unlink(self, *args, **kwargs)  # the rival wins the race
        return original_unlink(self, *args, **kwargs)  # ours: file is gone

    monkeypatch.setattr(Path, "unlink", racing_unlink)
    server = _server()
    server._remove_stale_socket(path)
    monkeypatch.undo()

    assert not path.exists()
    # losing the race is not a reclaim: the counter stays untouched
    assert server.metrics.counter("stale_socket_removed") == 0


def test_two_servers_reclaiming_the_same_stale_socket(tmp_path):
    """Two servers starting on the same path: neither may crash on the
    lstat → unlink window, whatever the interleaving."""
    path = tmp_path / "contested.sock"
    servers = [_server(), _server()]
    for _ in range(25):
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(str(path))
        stale.close()
        barrier = threading.Barrier(2)
        errors = []

        def reclaim(server):
            barrier.wait()
            try:
                server._remove_stale_socket(path)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=reclaim, args=(server,))
            for server in servers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not path.exists()


def test_missing_socket_path_is_fine(tmp_path):
    path = tmp_path / "fresh.sock"
    server = _server()
    thread = threading.Thread(target=server.serve_socket, args=(path,), daemon=True)
    thread.start()
    responses = _talk(path, [{"type": "shutdown", "id": "end"}])
    thread.join(timeout=10)
    assert responses[-1]["type"] == "bye"
    assert server.metrics.counter("stale_socket_removed") == 0
