"""The command-line interface."""

import json

import pytest

from repro.cli import load_graph, load_schema, main


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.tbox"
    path.write_text(
        "# typing\nCustomer <= forall owns.CredCard\nCustomer <= exists owns.CredCard\n"
    )
    return str(path)


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.edges"
    path.write_text("alice: Customer\ngold: CredCard\nalice -owns-> gold\n")
    return str(path)


class TestLoaders:
    def test_load_schema(self, schema_file):
        tbox = load_schema(schema_file)
        assert len(tbox) == 2

    def test_load_schema_error(self, tmp_path):
        bad = tmp_path / "bad.tbox"
        bad.write_text("no arrow here\n")
        with pytest.raises(SystemExit):
            load_schema(str(bad))

    def test_load_graph(self, graph_file):
        g = load_graph(graph_file)
        assert g.has_label("alice", "Customer")
        assert g.has_edge("alice", "owns", "gold")

    def test_load_graph_bare_node(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("lonely\n")
        assert "lonely" in load_graph(str(path))


class TestCommands:
    def test_contain_positive(self, schema_file, capsys):
        rc = main([
            "contain", "Customer(x), owns(x,y)", "owns(x,y), CredCard(y)",
            "--schema", schema_file,
        ])
        assert rc == 0
        assert "CONTAINED" in capsys.readouterr().out

    def test_contain_negative_with_countermodel(self, capsys):
        rc = main(["contain", "owns(x,y)", "CredCard(y)"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "NOT CONTAINED" in out and "countermodel" in out

    def test_entail(self, schema_file, graph_file, capsys):
        rc = main(["entail", graph_file, schema_file, "CredCard(y)"])
        assert rc == 0
        assert "ENTAILED" in capsys.readouterr().out

    def test_eval(self, graph_file, capsys):
        rc = main(["eval", graph_file, "Customer(x), owns(x,y)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MATCH" in out and "alice" in out

    def test_eval_no_match(self, graph_file, capsys):
        rc = main(["eval", graph_file, "Zz(x)"])
        assert rc == 1


class TestContainFlags:
    LHS, RHS = "Customer(x), owns(x,y)", "owns(x,y), CredCard(y)"

    def _contain(self, schema_file, capsys, *flags):
        rc = main(["contain", self.LHS, self.RHS, "--schema", schema_file, *flags])
        return rc, capsys.readouterr().out

    def test_incremental_on_off_agree(self, schema_file, capsys):
        rc_on, out_on = self._contain(schema_file, capsys, "--incremental", "on")
        rc_off, out_off = self._contain(schema_file, capsys, "--incremental", "off")
        assert rc_on == rc_off == 0
        assert out_on == out_off

    def test_incremental_rejects_bad_value(self, schema_file):
        with pytest.raises(SystemExit):
            main(["contain", self.LHS, self.RHS, "--schema", schema_file,
                  "--incremental", "maybe"])

    def test_workers_verdict_identical_to_serial(self, schema_file, capsys):
        rc_serial, out_serial = self._contain(schema_file, capsys, "--workers", "1")
        rc_pool, out_pool = self._contain(schema_file, capsys, "--workers", "2")
        assert rc_serial == rc_pool == 0
        assert out_serial == out_pool

    def test_workers_auto_accepted(self, capsys):
        rc = main(["contain", "owns(x,y)", "CredCard(y)", "--workers", "auto"])
        assert rc == 1
        assert "NOT CONTAINED" in capsys.readouterr().out


class TestTraceAndExplain:
    LHS, RHS = "Customer(x), owns(x,y)", "owns(x,y), CredCard(y)"

    def test_contain_trace_writes_chrome_json(self, schema_file, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        rc = main([
            "contain", self.LHS, self.RHS, "--schema", schema_file,
            "--trace", str(trace_file),
        ])
        assert rc == 0
        doc = json.loads(trace_file.read_text())
        names = [event["name"] for event in doc["traceEvents"]]
        assert "decision" in names
        assert all(event["ph"] == "X" for event in doc["traceEvents"])

    def test_contain_trace_does_not_change_verdict(self, schema_file, tmp_path, capsys):
        rc_plain = main(["contain", self.LHS, self.RHS, "--schema", schema_file])
        out_plain = capsys.readouterr().out
        rc_traced = main([
            "contain", self.LHS, self.RHS, "--schema", schema_file,
            "--trace", str(tmp_path / "trace.json"),
        ])
        out_traced = capsys.readouterr().out
        assert rc_plain == rc_traced == 0
        assert out_plain == out_traced

    def test_explain_prints_report(self, schema_file, capsys):
        rc = main([
            "explain", self.LHS, self.RHS, "--schema", schema_file, "--no-memo",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "decision d-" in out
        assert "CONTAINED" in out
        assert "phase breakdown" in out

    def test_explain_preset_with_outputs(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        events_file = tmp_path / "events.jsonl"
        rc = main([
            "explain", "--preset", "example11", "--no-memo",
            "--trace", str(trace_file), "--events", str(events_file),
        ])
        assert rc == 0
        doc = json.loads(trace_file.read_text())
        assert doc["traceEvents"]
        records = [json.loads(l) for l in events_file.read_text().splitlines()]
        assert records[0]["name"] == "decision"

    def test_explain_not_contained_exits_one(self, capsys):
        rc = main(["explain", "owns(x,y)", "CredCard(y)", "--no-memo"])
        assert rc == 1
        assert "NOT CONTAINED" in capsys.readouterr().out


class TestServiceCommands:
    """`batch` and `serve` smokes on the Example 1.1 fixtures."""

    @pytest.fixture
    def example11_requests(self, tmp_path):
        from repro.dl.pg_schema import figure1_schema
        from repro.io import query_to_text, tbox_to_dict
        from repro.queries.presets import example_11_q1, example_11_q2

        q1, q2 = query_to_text(example_11_q1()), query_to_text(example_11_q2())
        path = tmp_path / "requests.jsonl"
        lines = [
            {"type": "schema", "ref": "fig1", "tbox": tbox_to_dict(figure1_schema())},
            # q2 ⊆_S q1 — the fast direction of Example 1.1
            {"type": "decide", "id": "fwd", "lhs": q2, "rhs": q1, "schema_ref": "fig1"},
            {"type": "decide", "id": "dup", "lhs": q2, "rhs": q1, "schema_ref": "fig1"},
            # schema-less baseline with a countermodel
            {"type": "decide", "id": "neg", "lhs": q2, "rhs": "PremCC(x)"},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return path

    def _verdicts(self, text):
        responses = [json.loads(line) for line in text.splitlines()]
        return {r["id"]: r for r in responses if r["type"] == "verdict"}

    def test_batch_example11(self, example11_requests, tmp_path, capsys):
        out_file = tmp_path / "verdicts.jsonl"
        metrics_file = tmp_path / "metrics.json"
        rc = main([
            "batch", str(example11_requests), "-o", str(out_file),
            "--cache-dir", str(tmp_path / "cache"),
            "--metrics-json", str(metrics_file),
        ])
        assert rc == 0
        verdicts = self._verdicts(out_file.read_text())
        assert verdicts["fwd"]["verdict"]["contained"] is True
        assert verdicts["dup"]["source"] == "dedup"
        assert verdicts["dup"]["verdict"] == verdicts["fwd"]["verdict"]
        assert verdicts["neg"]["verdict"]["contained"] is False
        assert verdicts["neg"]["verdict"]["countermodel"] is not None
        metrics = json.loads(metrics_file.read_text())
        assert metrics["counters"]["decisions_executed"] == 2
        assert metrics["counters"]["dedup_collapses"] == 1

    def test_batch_warm_cache_answers_without_search(
        self, example11_requests, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        cold_out = tmp_path / "cold.jsonl"
        warm_out = tmp_path / "warm.jsonl"
        warm_metrics = tmp_path / "warm-metrics.json"
        assert main(["batch", str(example11_requests), "-o", str(cold_out),
                     "--cache-dir", str(cache_dir)]) == 0
        assert main(["batch", str(example11_requests), "-o", str(warm_out),
                     "--cache-dir", str(cache_dir),
                     "--metrics-json", str(warm_metrics)]) == 0
        cold, warm = self._verdicts(cold_out.read_text()), self._verdicts(warm_out.read_text())
        for request_id in cold:
            assert warm[request_id]["verdict"] == cold[request_id]["verdict"]
        metrics = json.loads(warm_metrics.read_text())
        assert metrics["counters"].get("decisions_executed", 0) == 0
        assert metrics["counters"].get("verdicts_cache", 0) == 2

    def test_batch_stdout_and_error_exit(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "decide", "id": "x", "lhs": "((", "rhs": "A(x)"}\n')
        rc = main(["batch", str(path), "--no-cache"])
        assert rc == 1
        (response,) = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert response["type"] == "error"

    def test_serve_pipe_example11(self, example11_requests, tmp_path, capsys, monkeypatch):
        import io as io_module
        import sys

        monkeypatch.setattr(
            sys, "stdin", io_module.StringIO(example11_requests.read_text())
        )
        rc = main(["serve", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        verdicts = self._verdicts(capsys.readouterr().out)
        assert verdicts["fwd"]["verdict"]["contained"] is True
        assert verdicts["neg"]["verdict"]["contained"] is False


class TestResilienceFlags:
    """`--timeout-ms` and the nonzero error exit codes."""

    @pytest.fixture
    def unique_schema_file(self, tmp_path):
        # concepts no other test decides on, so the process-wide decision
        # memo cannot answer before the deadline is consulted
        path = tmp_path / "cli-unique.tbox"
        path.write_text("CliA <= forall cli_r.CliB\n")
        return str(path)

    def test_contain_timeout_reports_incomplete(self, unique_schema_file, capsys):
        rc = main([
            "contain", "CliA(x), cli_r(x,y)", "CliB(y)",
            "--schema", unique_schema_file, "--timeout-ms", "0",
        ])
        assert rc in (0, 1)
        assert "incomplete: timeout expired" in capsys.readouterr().out

    def test_contain_generous_timeout_unchanged(self, unique_schema_file, capsys):
        rc = main([
            "contain", "CliA(x), cli_r(x,y)", "CliB(y)",
            "--schema", unique_schema_file, "--timeout-ms", "60000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CONTAINED" in out
        assert "timeout" not in out

    def test_parse_error_exits_two(self, capsys):
        rc = main(["contain", "A(x", "B(x)"])
        assert rc == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_missing_schema_file_exits_nonzero(self, capsys):
        rc = main(["contain", "A(x)", "A(x)", "--schema", "/no/such/file.tbox"])
        assert rc != 0

    def test_bad_timeout_value_rejected(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["contain", "A(x)", "A(x)", "--timeout-ms", "soon"])
        assert info.value.code == 2

    def test_batch_timeout_flag(self, tmp_path, capsys):
        from repro.dl.tbox import TBox
        from repro.io import tbox_to_dict

        schema = tbox_to_dict(TBox.of([("CliC", "forall cli_s.CliD")], name="cli"))
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in [
            {"type": "schema", "ref": "s", "tbox": schema},
            {"type": "decide", "id": "cut", "lhs": "CliC(x), cli_s(x,y)",
             "rhs": "CliD(y)", "schema_ref": "s"},
        ]) + "\n")
        rc = main(["batch", str(path), "--no-cache", "--timeout-ms", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        (verdict,) = [json.loads(l) for l in out.splitlines() if "verdict" in l]
        assert verdict["verdict"]["deadline_expired"] is True
        assert verdict["verdict"]["complete"] is False
