"""The command-line interface."""

import pytest

from repro.cli import load_graph, load_schema, main


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.tbox"
    path.write_text(
        "# typing\nCustomer <= forall owns.CredCard\nCustomer <= exists owns.CredCard\n"
    )
    return str(path)


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.edges"
    path.write_text("alice: Customer\ngold: CredCard\nalice -owns-> gold\n")
    return str(path)


class TestLoaders:
    def test_load_schema(self, schema_file):
        tbox = load_schema(schema_file)
        assert len(tbox) == 2

    def test_load_schema_error(self, tmp_path):
        bad = tmp_path / "bad.tbox"
        bad.write_text("no arrow here\n")
        with pytest.raises(SystemExit):
            load_schema(str(bad))

    def test_load_graph(self, graph_file):
        g = load_graph(graph_file)
        assert g.has_label("alice", "Customer")
        assert g.has_edge("alice", "owns", "gold")

    def test_load_graph_bare_node(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("lonely\n")
        assert "lonely" in load_graph(str(path))


class TestCommands:
    def test_contain_positive(self, schema_file, capsys):
        rc = main([
            "contain", "Customer(x), owns(x,y)", "owns(x,y), CredCard(y)",
            "--schema", schema_file,
        ])
        assert rc == 0
        assert "CONTAINED" in capsys.readouterr().out

    def test_contain_negative_with_countermodel(self, capsys):
        rc = main(["contain", "owns(x,y)", "CredCard(y)"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "NOT CONTAINED" in out and "countermodel" in out

    def test_entail(self, schema_file, graph_file, capsys):
        rc = main(["entail", graph_file, schema_file, "CredCard(y)"])
        assert rc == 0
        assert "ENTAILED" in capsys.readouterr().out

    def test_eval(self, graph_file, capsys):
        rc = main(["eval", graph_file, "Customer(x), owns(x,y)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MATCH" in out and "alice" in out

    def test_eval_no_match(self, graph_file, capsys):
        rc = main(["eval", graph_file, "Zz(x)"])
        assert rc == 1
