"""The ``repro cache`` subcommand: stats, ls, clear."""

import json

from repro.cli import main
from repro.service.cache import (
    JOURNAL_NAME,
    SEMANTIC_JOURNAL_NAME,
    DecisionCache,
)

TRUE_VERDICT = {
    "format": 1, "contained": True, "complete": True, "method": "sparse",
    "seeds_tried": 1, "supported_by_theory": True, "countermodel": None,
}


def seed_cache(tmp_path):
    cache = DecisionCache(tmp_path)
    cache.put("d" * 64, TRUE_VERDICT)
    cache.put_semantic("g" * 64, "A(x); B(x)", TRUE_VERDICT)
    cache.put_semantic("g" * 64, "A(x), r(x,y)", TRUE_VERDICT)
    return cache


class TestStats:
    def test_stats_payload(self, tmp_path, capsys):
        seed_cache(tmp_path)
        rc = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_dir"] == str(tmp_path)
        assert payload["decisions"]["entries"] == 1
        assert payload["decisions"]["semantic"]["entries"] == 2
        assert payload["decisions"]["semantic"]["groups"] == 1

    def test_stats_on_empty_dir(self, tmp_path, capsys):
        rc = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decisions"]["entries"] == 0

    def test_stats_never_heals(self, tmp_path, capsys):
        seed_cache(tmp_path)
        journal = tmp_path / SEMANTIC_JOURNAL_NAME
        damaged = journal.read_text() + "{torn\n"
        journal.write_text(damaged)
        rc = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert rc == 0
        # inspection is read-only: the damaged journal is left as found
        assert journal.read_text() == damaged


class TestLs:
    def test_lists_decisions_then_semantic_groups(self, tmp_path, capsys):
        seed_cache(tmp_path)
        rc = main(["cache", "ls", "--cache-dir", str(tmp_path)])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("decision ")
        assert "contained=True" in lines[0] and "method=sparse" in lines[0]
        assert lines[1] == f"semantic-group {'g' * 16} premises=2"

    def test_limit_truncates_with_ellipsis(self, tmp_path, capsys):
        seed_cache(tmp_path)
        rc = main(["cache", "ls", "--cache-dir", str(tmp_path), "--limit", "1"])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert lines[-1] == "..."

    def test_empty_dir_message(self, tmp_path, capsys):
        rc = main(["cache", "ls", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "no cached entries" in capsys.readouterr().out


class TestClear:
    def test_removes_both_journals(self, tmp_path, capsys):
        seed_cache(tmp_path)
        rc = main(["cache", "clear", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert not (tmp_path / JOURNAL_NAME).exists()
        assert not (tmp_path / SEMANTIC_JOURNAL_NAME).exists()

    def test_clears_corrupt_journal_without_loading(self, tmp_path, capsys):
        (tmp_path / JOURNAL_NAME).write_text("garbage that will not parse\n")
        rc = main(["cache", "clear", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert not (tmp_path / JOURNAL_NAME).exists()

    def test_clear_empty_dir(self, tmp_path, capsys):
        rc = main(["cache", "clear", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "nothing to clear" in capsys.readouterr().out
