"""JSON round-trips for graphs, TBoxes, and queries."""

import pytest

from repro.dl.pg_schema import figure1_instance, figure1_schema
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.io import (
    dump_graph,
    dump_query,
    dump_tbox,
    dump_verdict,
    load_graph,
    load_query,
    load_tbox,
    load_verdict,
    verdict_to_dict,
)
from repro.queries.parser import parse_query


class TestGraphIO:
    def test_roundtrip_simple(self):
        g = figure1_instance()
        assert load_graph(dump_graph(g)) == g

    def test_roundtrip_random(self):
        for seed in range(5):
            g = random_connected_graph(6, 3, ["A", "B"], ["r", "s"], seed=seed)
            assert load_graph(dump_graph(g)) == g

    def test_tuple_node_ids(self):
        g = Graph()
        g.add_node(("w", 0), ["A"])
        g.add_node(("cmp", 1, ("tau", 0)))
        g.add_edge(("w", 0), "r", ("cmp", 1, ("tau", 0)))
        restored = load_graph(dump_graph(g))
        assert restored == g
        assert ("cmp", 1, ("tau", 0)) in restored

    def test_empty_graph(self):
        assert load_graph(dump_graph(Graph())) == Graph()


class TestTBoxIO:
    def test_roundtrip_semantics(self):
        tbox = figure1_schema()
        restored = load_tbox(dump_tbox(tbox))
        assert restored.name == tbox.name
        assert len(restored) == len(tbox)
        # semantic equivalence on the reference instance and a mutant
        g = figure1_instance()
        assert restored.satisfied_by(g) == tbox.satisfied_by(g)
        g.remove_edge("ada", "owns", "card1")
        g.remove_edge("ada", "owns", "card2")
        assert restored.satisfied_by(g) == tbox.satisfied_by(g)

    def test_counting_and_inverse_roundtrip(self):
        from repro.dl.tbox import TBox

        tbox = TBox.of([("A", ">=2 r.B"), ("B", "forall s-.A")], name="t")
        restored = load_tbox(dump_tbox(tbox))
        assert len(restored) == 2
        assert "2" in str(restored.cis[0]) and "s-" in str(restored.cis[1])


class TestQueryIO:
    @pytest.mark.parametrize(
        "text",
        [
            "A(x), r(x,y)",
            "(owns.earns.{Partner}.owns*)(x,y)",
            "A(x); B(x), (r|s-)*(x,y)",
            "!A(x), r+(x,y)",
        ],
    )
    def test_roundtrip_semantics(self, text):
        from repro.graphs.generators import random_graph
        from repro.queries.evaluation import satisfies_union

        original = parse_query(text)
        restored = load_query(dump_query(original))
        for seed in range(6):
            g = random_graph(4, 6, ["A", "B", "Partner"], ["r", "s", "owns", "earns"], seed=seed)
            assert satisfies_union(g, original) == satisfies_union(g, restored), seed

    def test_dump_accepts_text(self):
        assert load_query(dump_query("A(x)")) == parse_query("A(x)")


class TestVerdictIO:
    def _roundtrip(self, result):
        restored = load_verdict(dump_verdict(result))
        assert restored.contained == result.contained
        assert restored.complete == result.complete
        assert restored.method == result.method
        assert restored.seeds_tried == result.seeds_tried
        assert restored.supported_by_theory == result.supported_by_theory
        assert restored.countermodel == result.countermodel
        return restored

    def test_positive_verdict(self):
        from repro.core.containment import ContainmentResult

        self._roundtrip(
            ContainmentResult(True, True, "sparse", None, seeds_tried=3)
        )

    def test_negative_verdict_carries_countermodel(self):
        from repro.core.containment import ContainmentResult

        model = figure1_instance()
        restored = self._roundtrip(
            ContainmentResult(False, True, "direct", model, seeds_tried=7)
        )
        assert restored.countermodel is not model  # a fresh graph, not an alias

    def test_unsupported_combination_flag(self):
        from repro.core.containment import ContainmentResult

        restored = self._roundtrip(
            ContainmentResult(True, False, "direct", supported_by_theory=False)
        )
        assert restored.supported_by_theory is False

    def test_real_decision_roundtrip(self):
        from repro.core.containment import is_contained

        result = is_contained("owns(x,y)", "CredCard(y)")
        assert result.contained is False and result.countermodel is not None
        self._roundtrip(result)

    def test_tuple_node_countermodel(self):
        from repro.core.containment import ContainmentResult

        model = Graph()
        model.add_node(("w", 0), ["A"])
        model.add_edge(("w", 0), "r", ("cmp", 1, ("tau", 0)))
        self._roundtrip(ContainmentResult(False, True, "direct", model))

    def test_dict_shape_is_wire_stable(self):
        from repro.core.containment import ContainmentResult

        payload = verdict_to_dict(ContainmentResult(True, True, "syntactic"))
        assert set(payload) == {
            "format", "contained", "complete", "method", "seeds_tried",
            "supported_by_theory", "countermodel",
        }
