"""Shared utilities."""

from repro.utils import fresh_name_factory, powerset, stable_unique


class TestFreshNames:
    def test_avoids_taken(self):
        fresh = fresh_name_factory("X", taken=["X0", "X2"])
        assert fresh() == "X1"
        assert fresh() == "X3"

    def test_never_repeats(self):
        fresh = fresh_name_factory("Y")
        names = {fresh() for _ in range(50)}
        assert len(names) == 50


class TestSetHelpers:
    def test_powerset(self):
        subsets = list(powerset([1, 2]))
        assert subsets == [(), (1,), (2,), (1, 2)]

    def test_stable_unique(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]
        assert stable_unique([]) == []
