"""Workload generators: determinism, shapes, profile mix."""

import random

from repro.dl.normalize import normalize
from repro.workloads import (
    QueryLogProfile,
    chain_schema,
    log_like_queries,
    random_simple_query,
    star_schema,
)


class TestSchemas:
    def test_chain_schema(self):
        t = normalize(chain_schema(3))
        assert len(t.at_leasts) == 3
        assert t.fragment() == "ALC"

    def test_chain_schema_universal_variant(self):
        t = normalize(chain_schema(2, participation=False))
        assert not t.has_participation_constraints()
        assert len(t.universals) == 2

    def test_star_schema(self):
        t = normalize(star_schema(4))
        assert len(t.role_names()) == 4


class TestQueries:
    def test_random_simple_is_simple(self):
        rng = random.Random(0)
        for _ in range(20):
            q = random_simple_query(rng, ["A", "B"], ["r", "s"], n_atoms=3)
            assert q.is_simple()
            assert q.is_connected()

    def test_log_mix_determinism(self):
        a = [(s, str(q)) for s, q in log_like_queries(30, ["A"], ["r"], seed=3)]
        b = [(s, str(q)) for s, q in log_like_queries(30, ["A"], ["r"], seed=3)]
        assert a == b

    def test_log_mix_profile(self):
        counts: dict[str, int] = {}
        for shape, _q in log_like_queries(400, ["A", "B"], ["r", "s"], seed=1):
            counts[shape] = counts.get(shape, 0) + 1
        assert counts["single_edge"] > counts["concatenation"]
        assert counts["single_edge"] + counts["transitive"] > 0.7 * 400

    def test_shapes_classify_correctly(self):
        for shape, query in log_like_queries(60, ["A"], ["r", "s"], seed=9):
            if shape in ("single_edge", "transitive", "two_way"):
                assert query.is_simple(), (shape, str(query))
            if shape == "concatenation":
                assert not query.is_simple()
            if shape != "two_way":
                assert query.is_one_way()

    def test_custom_profile(self):
        profile = QueryLogProfile(single_edge=1.0, transitive=0, concatenation=0, two_way=0)
        shapes = {s for s, _ in log_like_queries(20, ["A"], ["r"], profile, seed=0)}
        assert shapes == {"single_edge"}


class TestERSchemas:
    def test_deterministic(self):
        from repro.workloads import ERProfile, random_er_tbox

        a = random_er_tbox(ERProfile(entities=3), seed=7)
        b = random_er_tbox(ERProfile(entities=3), seed=7)
        assert [str(ci) for ci in a] == [str(ci) for ci in b]

    def test_stays_in_alcq(self):
        from repro.dl.normalize import normalize
        from repro.workloads import ERProfile, random_er_tbox

        for seed in range(6):
            t = normalize(random_er_tbox(ERProfile(entities=4, relationships=4), seed=seed))
            assert not t.uses_inverse_roles()
            assert t.fragment() in ("ALC", "ALCQ")

    def test_coherent(self):
        from repro.dl.reasoning import is_coherent
        from repro.workloads import ERProfile, random_er_tbox

        report = is_coherent(random_er_tbox(ERProfile(entities=3, relationships=2), seed=1))
        assert all(report.values())

    def test_subtypes_and_disjointness_present(self):
        from repro.workloads import ERProfile, random_er_schema

        schema = random_er_schema(ERProfile(entities=3, subtypes_per_entity=2), seed=0)
        tbox = schema.to_tbox()
        text = str(tbox)
        assert "E0S0" in text and "bottom" in text
